#include "circuit/batch_eval.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace yac
{

BatchChipEvaluator::BatchChipEvaluator(const CacheGeometry &geom,
                                       const Technology &tech)
    : geom_(geom), tech_(tech), device_(tech_), wire_(tech_),
      wayModel_(geom_, tech_)
{
    // Every constant below is the exact subexpression the scalar
    // WayModel computes per path, evaluated once. No reassociation:
    // hoisting a value the scalar path also computes as one
    // expression keeps the batched result bitwise identical.
    halfBankWidth_ = 0.5 * geom_.bankWidthUm();
    bankWidth_ = geom_.bankWidthUm();
    capPre1x2_ = device_.gateCap(WayModel::kPredecode1Width) * 2.0;
    capPre2_ = device_.gateCap(WayModel::kPredecode2Width);
    capGwl_ = device_.gateCap(WayModel::kGwlDriverWidth);
    capLwl_ = device_.gateCap(WayModel::kLwlDriverWidth);
    wlLoad_ = static_cast<double>(geom_.colsPerBank) *
        device_.gateCap(WayModel::kCellAccessWidth);

    const std::size_t seg_rows = geom_.rowsPerBitlineSegment();
    segLen_ = static_cast<double>(seg_rows) * geom_.cellHeightUm;
    cBlJunction_ = static_cast<double>(seg_rows) *
        device_.junctionCap(WayModel::kCellAccessWidth);
    busLen_ = 0.5 * geom_.bankWidthUm();
    cells_ = static_cast<double>(geom_.cellsPerRowGroup());
    cellGateLeak_ = device_.gateLeak(WayModel::kCellLeakWidth);

    gwlLen_.resize(geom_.banksPerWay);
    for (std::size_t b = 0; b < geom_.banksPerWay; ++b) {
        gwlLen_[b] =
            (static_cast<double>(b) + 0.5) * geom_.bankHeightUm();
    }

    const std::size_t groups_per_seg = geom_.bitlineSplit
        ? geom_.rowGroupsPerBank / 2
        : geom_.rowGroupsPerBank;
    segLenDist_.resize(geom_.rowGroupsPerBank);
    for (std::size_t g = 0; g < geom_.rowGroupsPerBank; ++g) {
        const std::size_t pos_in_seg =
            g % std::max<std::size_t>(groups_per_seg, 1);
        const double dist_frac =
            (static_cast<double>(pos_in_seg) + 0.5) /
            static_cast<double>(std::max<std::size_t>(groups_per_seg, 1));
        segLenDist_[g] = segLen_ * dist_frac;
    }
    segLenDistByPath_.resize(geom_.banksPerWay *
                             geom_.rowGroupsPerBank);
    for (std::size_t b = 0; b < geom_.banksPerWay; ++b)
        for (std::size_t g = 0; g < geom_.rowGroupsPerBank; ++g)
            segLenDistByPath_[b * geom_.rowGroupsPerBank + g] =
                segLenDist_[g];

    // Peripheral leak widths, as in WayModel::peripheralLeakage.
    const double rows = static_cast<double>(geom_.rowsPerBank) *
        static_cast<double>(geom_.banksPerWay);
    const double cols = static_cast<double>(geom_.colsPerBank);
    const double banks = static_cast<double>(geom_.banksPerWay);
    const double sa_per_bank = geom_.bitlineSplit ? 2.0 * cols : cols;
    decoderWidth_ = rows * WayModel::kLwlDriverWidth +
        32.0 * WayModel::kPredecode2Width +
        banks * WayModel::kGwlDriverWidth;
    prechargeWidth_ = banks * cols * 3.0 * 0.3;
    senseampWidth_ = banks * sa_per_bank * WayModel::kSenseAmpWidth;
    driverWidth_ = 64.0 * WayModel::kOutDriverWidth;
    decoderGateLeak_ = device_.gateLeak(decoderWidth_);
    prechargeGateLeak_ = device_.gateLeak(prechargeWidth_);
    senseampGateLeak_ = device_.gateLeak(senseampWidth_);
    driverGateLeak_ = device_.gateLeak(driverWidth_);
}

void
BatchChipEvaluator::prepareTiming(CacheTiming &timing,
                                  CacheLayout layout) const
{
    timing.layout = layout;
    timing.ways.resize(geom_.numWays);
    const std::size_t paths =
        geom_.banksPerWay * geom_.rowGroupsPerBank;
    for (WayTiming &way : timing.ways) {
        way.banks = geom_.banksPerWay;
        way.groupsPerBank = geom_.rowGroupsPerBank;
        way.pathDelays.resize(paths);
        way.groupCellLeakage.resize(paths);
    }
}

BatchChipEvaluator::WayStages
BatchChipEvaluator::wayStages(const ChipBatchSoa &soa,
                              std::size_t chip, std::size_t w) const
{
    WayStages st;
    st.dec = soa.load(chip, soa.peripheralSlot(w, 0));
    st.pre = soa.load(chip, soa.peripheralSlot(w, 1));
    st.sa = soa.load(chip, soa.peripheralSlot(w, 2));
    st.drv = soa.load(chip, soa.peripheralSlot(w, 3));

    // Way-level stage delays: identical formulas to
    // WayModel::stageBreakdown, computed once per way instead of once
    // per path (they do not depend on the row group).
    const double f_dec = device_.driveFactor(st.dec);
    st.tAddr = wire_.elmoreDelay(
        st.dec,
        device_.driveResistanceFromFactor(f_dec, st.dec,
                                          WayModel::kAddrDriverWidth),
        halfBankWidth_, capPre1x2_, /*coupling=*/1.5);
    st.tPre =
        device_.gateDelayFromFactor(f_dec, st.dec,
                                    WayModel::kPredecode1Width,
                                    capPre2_) +
        device_.gateDelayFromFactor(f_dec, st.dec,
                                    WayModel::kPredecode2Width,
                                    capGwl_);
    st.rGwl = device_.driveResistanceFromFactor(
        f_dec, st.dec, WayModel::kGwlDriverWidth);

    const double f_sa = device_.driveFactor(st.sa);
    st.tSa = device_.gateDelayFromFactor(
        f_sa, st.sa, WayModel::kSenseAmpWidth, 6.0);

    const double f_drv = device_.driveFactor(st.drv);
    ProcessParams bus = st.drv;
    bus.metalWidth *= 2.0;
    st.tOut = wire_.elmoreDelay(
        bus,
        device_.driveResistanceFromFactor(f_drv, st.drv,
                                          WayModel::kOutDriverWidth),
        busLen_, 8.0);
    return st;
}

double
BatchChipEvaluator::peripheralLeakage(const WayStages &st) const
{
    const double leak_ua =
        (device_.subthresholdLeak(st.dec, decoderWidth_) +
         decoderGateLeak_) +
        (device_.subthresholdLeak(st.pre, prechargeWidth_) +
         prechargeGateLeak_) +
        (device_.subthresholdLeak(st.sa, senseampWidth_) +
         senseampGateLeak_) +
        (device_.subthresholdLeak(st.drv, driverWidth_) +
         driverGateLeak_);
    return leak_ua * tech_.vdd / 1000.0;
}

void
BatchChipEvaluator::evaluateWay(const ChipBatchSoa &soa,
                                std::size_t chip, std::size_t w,
                                WayTiming &out) const
{
    const WayStages st = wayStages(soa, chip, w);

    const double s = tech_.delaySensitivity;
    const std::vector<double> &nominal = wayModel_.nominalRawDelays();
    for (std::size_t b = 0; b < geom_.banksPerWay; ++b) {
        const double t_gwl = wire_.elmoreDelay(st.dec, st.rGwl,
                                               gwlLen_[b], capLwl_,
                                               /*coupling=*/1.5);
        for (std::size_t g = 0; g < geom_.rowGroupsPerBank; ++g) {
            const ProcessParams grp =
                soa.load(chip, soa.rowGroupSlot(w, b, g));
            const ProcessParams cell =
                soa.load(chip, soa.worstCellSlot(w, b, g));

            const double f_grp = device_.driveFactor(grp);
            const double t_lwl = wire_.elmoreDelay(
                grp,
                device_.driveResistanceFromFactor(
                    f_grp, grp, WayModel::kLwlDriverWidth),
                bankWidth_, wlLoad_);

            const double c_bl =
                cBlJunction_ + wire_.wireCap(grp, segLen_,
                                             /*coupling=*/1.2);
            const double f_cell = device_.driveFactor(cell);
            const double i_cell = 0.45 *
                device_.onCurrentFromFactor(
                    f_cell, cell, WayModel::kCellPullWidth);
            double t_bl = 1000.0 * WayModel::kBitlineSwingFrac *
                tech_.vdd * c_bl / i_cell;
            t_bl +=
                0.69 * wire_.wireRes(grp, segLenDist_[g]) * c_bl;

            StageDelays stages;
            stages.addressBus = st.tAddr;
            stages.predecode = st.tPre;
            stages.globalWordLine = t_gwl;
            stages.localWordLine = t_lwl;
            stages.bitline = t_bl;
            stages.senseAmp = st.tSa;
            stages.output = st.tOut;
            const double raw = stages.total();

            const std::size_t idx = out.pathIndex(b, g);
            out.pathDelays[idx] =
                sensitivityScaledDelay(raw, nominal[idx], s);

            const double per_cell_ua =
                device_.subthresholdLeak(grp,
                                         WayModel::kCellLeakWidth) +
                cellGateLeak_;
            out.groupCellLeakage[idx] =
                per_cell_ua * cells_ * tech_.vdd / 1000.0;
        }
    }

    out.peripheralLeakage = peripheralLeakage(st);
}

#if YAC_VECMATH_X86

/**
 * 4-wide variant of evaluateWay. The way-level preamble and the
 * peripheral leakage are the shared scalar helpers above; the
 * per-path work runs four paths per instruction over the contiguous
 * SoA row-group and worst-cell plane ranges (soa_batch.hh slot
 * layout: both are `paths` consecutive slots per way).
 *
 * The formulas mirror DeviceModel/WireModel exactly but are freely
 * reassociated for FMA (e.g. drive resistance as
 * (1000 vdd / (I_per_um W)) * l_norm / factor instead of the scalar
 * chain of divisions): this path is tolerance-verified against the
 * scalar reference (prop_simd_engine), never bitwise. Requires
 * paths >= 4; the tail (paths % 4) is handled by re-running the last
 * full 4-lane window, which recomputes -- deterministically -- a few
 * already-written paths.
 */
YAC_SIMD_TARGET void
BatchChipEvaluator::evaluateWayAvx2(const ChipBatchSoa &soa,
                                    std::size_t chip, std::size_t w,
                                    WayTiming &out) const
{
    const WayStages st = wayStages(soa, chip, w);
    const std::size_t groups = geom_.rowGroupsPerBank;
    const std::size_t paths = geom_.banksPerWay * groups;

    // Per-path row-group-independent delay sum (t_gwl depends on the
    // bank, so this is not one scalar). Reused across calls.
    static thread_local std::vector<double> way_base;
    way_base.resize(paths);
    for (std::size_t b = 0; b < geom_.banksPerWay; ++b) {
        const double t_gwl = wire_.elmoreDelay(st.dec, st.rGwl,
                                               gwlLen_[b], capLwl_,
                                               /*coupling=*/1.5);
        const double base =
            st.tAddr + st.tPre + t_gwl + st.tSa + st.tOut;
        for (std::size_t g = 0; g < groups; ++g)
            way_base[b * groups + g] = base;
    }

    // Contiguous per-way plane ranges (kAllProcessParams order:
    // L, Vt, W, T, H).
    const std::size_t at = chip * soa.slotsPerChip;
    const double *rg_l = soa.plane[0].data() + at +
        soa.rowGroupSlot(w, 0, 0);
    const double *rg_vt = soa.plane[1].data() + at +
        soa.rowGroupSlot(w, 0, 0);
    const double *rg_w = soa.plane[2].data() + at +
        soa.rowGroupSlot(w, 0, 0);
    const double *rg_t = soa.plane[3].data() + at +
        soa.rowGroupSlot(w, 0, 0);
    const double *rg_h = soa.plane[4].data() + at +
        soa.rowGroupSlot(w, 0, 0);
    const double *wc_l = soa.plane[0].data() + at +
        soa.worstCellSlot(w, 0, 0);
    const double *wc_vt = soa.plane[1].data() + at +
        soa.worstCellSlot(w, 0, 0);
    const double *nominal = wayModel_.nominalRawDelays().data();

    const double l_nom = 45.0; // DeviceModel nominalGateLengthNm_
    const __m256d v_lnom = _mm256_set1_pd(l_nom);
    const __m256d v_mv = _mm256_set1_pd(1e-3);
    const __m256d v_roll = _mm256_set1_pd(tech_.vtRolloffPerL);
    const __m256d v_vdd = _mm256_set1_pd(tech_.vdd);
    const __m256d v_od_floor = _mm256_set1_pd(0.05);
    const __m256d v_alpha = _mm256_set1_pd(tech_.alpha);
    const __m256d v_s = _mm256_set1_pd(tech_.delaySensitivity);
    const __m256d v_geo_floor = _mm256_set1_pd(1e-3);
    const __m256d v_eps = _mm256_set1_pd(tech_.permittivityFfPerUm);
    const __m256d v_fringe =
        _mm256_set1_pd(tech_.permittivityFfPerUm * 1.1);
    const __m256d v_pitch = _mm256_set1_pd(tech_.wirePitchUm);
    const __m256d v_space_floor = _mm256_set1_pd(0.05);
    const __m256d v_rho =
        _mm256_set1_pd(tech_.wireResistivityOhmUm * 1e-3);
    // R_drv of the LWL driver: 1000 vdd l_norm / (I_per_um W f).
    const __m256d v_rdrv_lwl = _mm256_set1_pd(
        1000.0 * tech_.vdd /
        (tech_.onCurrentPerUm * WayModel::kLwlDriverWidth));
    const __m256d v_bank_len = _mm256_set1_pd(bankWidth_);
    const __m256d v_wl_load = _mm256_set1_pd(wlLoad_);
    const __m256d v_seg_len = _mm256_set1_pd(segLen_);
    const __m256d v_cbl_junc = _mm256_set1_pd(cBlJunction_);
    const __m256d v_icell_k = _mm256_set1_pd(
        0.45 * tech_.onCurrentPerUm * WayModel::kCellPullWidth);
    const __m256d v_swing = _mm256_set1_pd(
        1000.0 * WayModel::kBitlineSwingFrac * tech_.vdd);
    const __m256d v_c069 = _mm256_set1_pd(0.69);
    const __m256d v_c038 = _mm256_set1_pd(0.38);
    const __m256d v_leak_ref = _mm256_set1_pd(
        tech_.leakRefPerUm * WayModel::kCellLeakWidth);
    const __m256d v_inv_swing =
        _mm256_set1_pd(-1.0 / tech_.subthresholdSwing);
    const __m256d v_cell_gate = _mm256_set1_pd(cellGateLeak_);
    const __m256d v_leak_scale =
        _mm256_set1_pd(cells_ * tech_.vdd / 1000.0);

    const std::size_t last = paths - 4;
    for (std::size_t i = 0;; i = i + 4 > last ? last : i + 4) {
        // Row-group draw and its derived device/wire quantities.
        const __m256d lg = _mm256_loadu_pd(rg_l + i);
        const __m256d vt = _mm256_loadu_pd(rg_vt + i);
        const __m256d l_frac = _mm256_div_pd(
            _mm256_sub_pd(v_lnom, lg), v_lnom);
        const __m256d vt_eff = _mm256_fnmadd_pd(
            v_roll, l_frac, _mm256_mul_pd(vt, v_mv));
        const __m256d od = _mm256_max_pd(
            v_od_floor, _mm256_sub_pd(v_vdd, vt_eff));
        const __m256d f_grp = vecmath::pow4(od, v_alpha);
        const __m256d l_norm = _mm256_div_pd(lg, v_lnom);

        const __m256d mw = _mm256_max_pd(v_geo_floor,
                                         _mm256_loadu_pd(rg_w + i));
        const __m256d mt = _mm256_max_pd(v_geo_floor,
                                         _mm256_loadu_pd(rg_t + i));
        const __m256d mh = _mm256_max_pd(v_geo_floor,
                                         _mm256_loadu_pd(rg_h + i));
        const __m256d space = _mm256_max_pd(
            v_space_floor, _mm256_sub_pd(v_pitch, mw));
        // c/um = eps w/h + eps 1.1 + 2 eps t/space * coupling;
        // r/um = rho / (w t).
        const __m256d plate = _mm256_div_pd(
            _mm256_mul_pd(v_eps, mw), mh);
        const __m256d side = _mm256_div_pd(
            _mm256_mul_pd(_mm256_add_pd(v_eps, v_eps), mt), space);
        const __m256d cap_base =
            _mm256_add_pd(_mm256_add_pd(plate, v_fringe), side);
        const __m256d r_per_um =
            _mm256_div_pd(v_rho, _mm256_mul_pd(mw, mt));

        // Local word line Elmore (coupling 1.0).
        const __m256d r_drv = _mm256_div_pd(
            _mm256_mul_pd(v_rdrv_lwl, l_norm), f_grp);
        const __m256d c_wl =
            _mm256_mul_pd(cap_base, v_bank_len);
        const __m256d r_wl = _mm256_mul_pd(r_per_um, v_bank_len);
        __m256d t_lwl = _mm256_mul_pd(
            _mm256_mul_pd(v_c069, r_drv),
            _mm256_add_pd(c_wl, v_wl_load));
        t_lwl = _mm256_fmadd_pd(
            _mm256_mul_pd(v_c038, r_wl), c_wl, t_lwl);
        t_lwl = _mm256_fmadd_pd(
            _mm256_mul_pd(v_c069, r_wl), v_wl_load, t_lwl);

        // Bitline discharge: coupling 1.2 adds 0.2 * sidewall.
        const __m256d cap_bl = _mm256_fmadd_pd(
            side, _mm256_set1_pd(0.2), cap_base);
        const __m256d c_bl = _mm256_fmadd_pd(
            cap_bl, v_seg_len, v_cbl_junc);
        const __m256d cl = _mm256_loadu_pd(wc_l + i);
        const __m256d cvt = _mm256_loadu_pd(wc_vt + i);
        const __m256d c_lfrac = _mm256_div_pd(
            _mm256_sub_pd(v_lnom, cl), v_lnom);
        const __m256d c_vteff = _mm256_fnmadd_pd(
            v_roll, c_lfrac, _mm256_mul_pd(cvt, v_mv));
        const __m256d c_od = _mm256_max_pd(
            v_od_floor, _mm256_sub_pd(v_vdd, c_vteff));
        const __m256d f_cell = vecmath::pow4(c_od, v_alpha);
        const __m256d i_cell = _mm256_div_pd(
            _mm256_mul_pd(v_icell_k, f_cell),
            _mm256_div_pd(cl, v_lnom));
        __m256d t_bl = _mm256_div_pd(
            _mm256_mul_pd(v_swing, c_bl), i_cell);
        const __m256d r_seg = _mm256_mul_pd(
            r_per_um, _mm256_loadu_pd(segLenDistByPath_.data() + i));
        t_bl = _mm256_fmadd_pd(
            _mm256_mul_pd(v_c069, r_seg), c_bl, t_bl);

        // Widened path delay against the shared nominal reference.
        const __m256d raw = _mm256_add_pd(
            _mm256_add_pd(_mm256_loadu_pd(way_base.data() + i),
                          t_lwl),
            t_bl);
        const __m256d nom = _mm256_loadu_pd(nominal + i);
        const __m256d widened = _mm256_mul_pd(
            nom,
            vecmath::pow4(_mm256_div_pd(raw, nom), v_s));
        _mm256_storeu_pd(out.pathDelays.data() + i, widened);

        // Cell-array leakage of the row group.
        const __m256d sub_leak = _mm256_mul_pd(
            _mm256_div_pd(v_leak_ref, l_norm),
            vecmath::exp4(_mm256_mul_pd(vt_eff, v_inv_swing)));
        const __m256d leak = _mm256_mul_pd(
            _mm256_add_pd(sub_leak, v_cell_gate), v_leak_scale);
        _mm256_storeu_pd(out.groupCellLeakage.data() + i, leak);

        if (i >= last)
            break;
    }

    out.peripheralLeakage = peripheralLeakage(st);
}

#endif // YAC_VECMATH_X86

void
BatchChipEvaluator::evaluateChip(const ChipBatchSoa &soa,
                                 std::size_t chip,
                                 CacheTiming &regular,
                                 CacheTiming *horizontal,
                                 vecmath::SimdKernel kernel) const
{
    yac_assert(soa.geometry.numWays == geom_.numWays &&
                   soa.geometry.banksPerWay == geom_.banksPerWay &&
                   soa.geometry.rowGroupsPerBank ==
                       geom_.rowGroupsPerBank,
               "SoA batch geometry mismatch");
    yac_assert(regular.ways.size() == geom_.numWays,
               "regular output not prepared");
    // The AVX2 lane loop needs at least one full 4-path window; tiny
    // geometries (paths < 4) fall back to the scalar reference.
#if YAC_VECMATH_X86
    const bool use_avx2 = kernel == vecmath::SimdKernel::Avx2 &&
        geom_.banksPerWay * geom_.rowGroupsPerBank >= 4;
#else
    yac_assert(kernel == vecmath::SimdKernel::Scalar,
               "SIMD kernels unavailable on this target");
#endif
    const double layout_factor = tech_.hyapdDelayFactor;
    for (std::size_t w = 0; w < geom_.numWays; ++w) {
        WayTiming &reg = regular.ways[w];
#if YAC_VECMATH_X86
        if (use_avx2)
            evaluateWayAvx2(soa, chip, w, reg);
        else
            evaluateWay(soa, chip, w, reg);
#else
        evaluateWay(soa, chip, w, reg);
#endif
        if (horizontal == nullptr)
            continue;
        yac_assert(horizontal->ways.size() == geom_.numWays,
                   "horizontal output not prepared");
        WayTiming &hor = horizontal->ways[w];
        // The H-YAPD layout reuses the same draw; CacheModel scales
        // the regular path delays by hyapdDelayFactor (skipped when
        // it is exactly 1.0, like the scalar path), leakage is
        // unchanged.
        if (layout_factor != 1.0) {
            for (std::size_t i = 0; i < reg.pathDelays.size(); ++i)
                hor.pathDelays[i] = reg.pathDelays[i] * layout_factor;
        } else {
            hor.pathDelays = reg.pathDelays;
        }
        hor.groupCellLeakage = reg.groupCellLeakage;
        hor.peripheralLeakage = reg.peripheralLeakage;
    }
}

} // namespace yac
