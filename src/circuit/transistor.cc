#include "circuit/transistor.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace yac
{

double
DeviceModel::effectiveVt(const ProcessParams &p) const
{
    // Table 1 carries V_t in millivolts.
    const double vt = p.thresholdVoltage * 1e-3;
    const double l_frac =
        (nominalGateLengthNm_ - p.gateLength) / nominalGateLengthNm_;
    // A shorter channel (positive l_frac) lowers the barrier.
    return vt - tech_.vtRolloffPerL * l_frac;
}

double
DeviceModel::driveFactor(const ProcessParams &p) const
{
    const double overdrive =
        std::max(0.05, tech_.vdd - effectiveVt(p));
    return std::pow(overdrive, tech_.alpha);
}

double
DeviceModel::onCurrentFromFactor(double factor, const ProcessParams &p,
                                 double width_um) const
{
    yac_assert(width_um > 0.0, "device width must be positive");
    const double l_norm = p.gateLength / nominalGateLengthNm_;
    return tech_.onCurrentPerUm * width_um * factor / l_norm;
}

double
DeviceModel::onCurrent(const ProcessParams &p, double width_um) const
{
    return onCurrentFromFactor(driveFactor(p), p, width_um);
}

double
DeviceModel::subthresholdLeak(const ProcessParams &p,
                              double width_um) const
{
    const double l_norm = p.gateLength / nominalGateLengthNm_;
    return tech_.leakRefPerUm * (width_um / l_norm) *
        std::exp(-effectiveVt(p) / tech_.subthresholdSwing);
}

double
DeviceModel::gateLeak(double width_um) const
{
    // Gate leakage at nominal parameters: t_ox is not a Table 1
    // parameter, so this component does not vary.
    const double nominal_vt = 0.220;
    return tech_.gateLeakFraction * tech_.leakRefPerUm * width_um *
        std::exp(-nominal_vt / tech_.subthresholdSwing);
}

double
DeviceModel::totalLeak(const ProcessParams &p, double width_um) const
{
    return subthresholdLeak(p, width_um) + gateLeak(width_um);
}

double
DeviceModel::gateDelayFromFactor(double factor, const ProcessParams &p,
                                 double width_um, double load_ff) const
{
    const double total_load = load_ff + junctionCap(width_um);
    // ps = 1000 * fF * V / uA; 0.69 for the 50% crossing of an RC.
    return 0.69 * 1000.0 * total_load * tech_.vdd /
        onCurrentFromFactor(factor, p, width_um);
}

double
DeviceModel::gateDelay(const ProcessParams &p, double width_um,
                       double load_ff) const
{
    return gateDelayFromFactor(driveFactor(p), p, width_um, load_ff);
}

double
DeviceModel::driveResistanceFromFactor(double factor,
                                       const ProcessParams &p,
                                       double width_um) const
{
    // R_eq = Vdd / I_on, expressed in kOhm so kOhm * fF = ps.
    return 1000.0 * tech_.vdd /
        onCurrentFromFactor(factor, p, width_um);
}

double
DeviceModel::driveResistance(const ProcessParams &p,
                             double width_um) const
{
    return driveResistanceFromFactor(driveFactor(p), p, width_um);
}

double
DeviceModel::gateCap(double width_um) const
{
    return tech_.gateCapPerUm * width_um;
}

double
DeviceModel::junctionCap(double width_um) const
{
    return tech_.junctionCapPerUm * width_um;
}

} // namespace yac
