/**
 * @file
 * Batched chip evaluation fast path. Evaluates SoA-sampled chips
 * (variation/soa_batch.hh) into CacheTiming, producing the exact same
 * bits as CacheModel::evaluate on the scalar AoS path -- asserted by
 * tests/test_soa_batch.cc and the prop_* byte-identity suites -- at a
 * fraction of the cost:
 *
 *  - Per-technology/geometry constants (wire lengths, gate caps,
 *    peripheral leak widths, the flat gate-leakage terms) are hoisted
 *    to construction instead of being recomputed per path.
 *  - Stages that do not depend on the row group (address bus,
 *    predecode, sense amp, output driver; global word line depends
 *    only on the bank) are evaluated once per way / per bank instead
 *    of once per path, cutting the pow() count per chip by ~3x.
 *  - The Horizontal (H-YAPD) layout is derived from the Regular
 *    evaluation by the hyapdDelayFactor scaling CacheModel applies
 *    anyway, halving the work of dual-layout campaigns.
 *  - Outputs are written into pre-sized buffers (prepareTiming), so
 *    the steady-state evaluate loop performs zero heap allocations.
 *
 * Bitwise identity is maintained by reusing the exact scalar formulas
 * via DeviceModel/WireModel (including the *FromFactor variants,
 * which only hoist the width-independent pow/exp terms) and by never
 * reassociating floating-point expressions: hoisted values are
 * whole subexpressions the scalar path computes identically.
 */

#ifndef YAC_CIRCUIT_BATCH_EVAL_HH
#define YAC_CIRCUIT_BATCH_EVAL_HH

#include <cstddef>
#include <vector>

#include "circuit/cache_model.hh"
#include "circuit/geometry.hh"
#include "circuit/technology.hh"
#include "circuit/way_model.hh"
#include "util/vecmath.hh"
#include "variation/soa_batch.hh"

namespace yac
{

/** Evaluates SoA chip batches for one cache geometry/technology. */
class BatchChipEvaluator
{
  public:
    BatchChipEvaluator(const CacheGeometry &geom, const Technology &tech);

    /**
     * Size @p timing for this geometry and set its layout. Must be
     * called (or the chip's previous shape reused) before
     * evaluateChip; separated out so the per-chunk loop can pay the
     * output allocations once and the evaluate loop stays
     * allocation-free.
     */
    void prepareTiming(CacheTiming &timing, CacheLayout layout) const;

    /**
     * Evaluate chip @p chip of @p soa into @p regular (Regular
     * layout) and, when non-null, @p horizontal (H-YAPD layout
     * derived from the same draw). Both outputs must be pre-sized via
     * prepareTiming. Allocation-free in steady state.
     *
     * @p kernel selects the per-way inner loop. Scalar (the default)
     * is the bitwise reference described in the file comment. Avx2
     * runs the 4-wide lane loop over the contiguous SoA row-group
     * planes (util/vecmath.hh kernels); it is deterministic and
     * thread-count invariant, but tolerance-equal -- not bitwise
     * equal -- to the scalar path (tests/prop_simd_engine.cc). The
     * caller is responsible for resolving the kernel against host
     * capabilities (vecmath::resolveSimdKernel); passing Avx2 on a
     * host without AVX2+FMA is undefined.
     */
    void evaluateChip(
        const ChipBatchSoa &soa, std::size_t chip,
        CacheTiming &regular, CacheTiming *horizontal,
        vecmath::SimdKernel kernel = vecmath::SimdKernel::Scalar)
        const;

    const CacheGeometry &geometry() const { return geom_; }
    const Technology &technology() const { return tech_; }

  private:
    /** Row-group-independent per-way values: the stage delays that
     *  depend only on the peripheral draws, plus those draws. Shared
     *  by the scalar and SIMD inner loops so the way-level preamble
     *  cannot drift between them. */
    struct WayStages
    {
        ProcessParams dec, pre, sa, drv;
        double tAddr = 0.0; //!< address bus [ps]
        double tPre = 0.0;  //!< predecode chain [ps]
        double rGwl = 0.0;  //!< GWL driver resistance [kOhm]
        double tSa = 0.0;   //!< sense amp [ps]
        double tOut = 0.0;  //!< output driver + data bus [ps]
    };
    WayStages wayStages(const ChipBatchSoa &soa, std::size_t chip,
                        std::size_t w) const;
    double peripheralLeakage(const WayStages &st) const;

    void evaluateWay(const ChipBatchSoa &soa, std::size_t chip,
                     std::size_t w, WayTiming &out) const;

#if YAC_VECMATH_X86
    /** 4-wide AVX2/FMA variant of evaluateWay: same per-way scalar
     *  stage preamble, row-group/worst-cell work in 4-path lanes. */
    YAC_SIMD_TARGET void evaluateWayAvx2(const ChipBatchSoa &soa,
                                         std::size_t chip,
                                         std::size_t w,
                                         WayTiming &out) const;
#endif

    CacheGeometry geom_;
    Technology tech_;
    DeviceModel device_;
    WireModel wire_;

    /** Scalar way model: supplies the nominal raw path delays and
     *  keeps the two paths anchored to one reference. */
    WayModel wayModel_;

    // Hoisted per-geometry constants (see batch_eval.cc for the
    // scalar expressions each one mirrors).
    double halfBankWidth_ = 0.0;
    double bankWidth_ = 0.0;
    double capPre1x2_ = 0.0;
    double capPre2_ = 0.0;
    double capGwl_ = 0.0;
    double capLwl_ = 0.0;
    double wlLoad_ = 0.0;
    double segLen_ = 0.0;
    double cBlJunction_ = 0.0;
    double busLen_ = 0.0;
    double cells_ = 0.0;
    double cellGateLeak_ = 0.0;
    double decoderWidth_ = 0.0;
    double prechargeWidth_ = 0.0;
    double senseampWidth_ = 0.0;
    double driverWidth_ = 0.0;
    double decoderGateLeak_ = 0.0;
    double prechargeGateLeak_ = 0.0;
    double senseampGateLeak_ = 0.0;
    double driverGateLeak_ = 0.0;
    std::vector<double> gwlLen_;     //!< per bank
    std::vector<double> segLenDist_; //!< per group: seg_len * dist_frac
    /** segLenDist_ unrolled to per-path (bank-major) order, so the
     *  SIMD lane loop can load 4 consecutive paths' values. */
    std::vector<double> segLenDistByPath_;
};

} // namespace yac

#endif // YAC_CIRCUIT_BATCH_EVAL_HH
