/**
 * @file
 * Analytical MOS device model: alpha-power-law drive current and
 * exponential subthreshold leakage, both as functions of the varied
 * process parameters (gate length and threshold voltage).
 */

#ifndef YAC_CIRCUIT_TRANSISTOR_HH
#define YAC_CIRCUIT_TRANSISTOR_HH

#include "circuit/technology.hh"
#include "variation/process_params.hh"

namespace yac
{

/**
 * Device-level helpers. Stateless; all methods take the process
 * parameters of the region the device sits in.
 */
class DeviceModel
{
  public:
    explicit DeviceModel(const Technology &tech) : tech_(tech) {}

    /**
     * Effective threshold voltage [V], including short-channel
     * roll-off: a channel shorter than nominal depresses V_t.
     */
    double effectiveVt(const ProcessParams &p) const;

    /**
     * Saturation drive current [uA] of a device of @p width_um,
     * alpha-power law: I ~ W/L * (Vdd - Vt)^alpha.
     */
    double onCurrent(const ProcessParams &p, double width_um) const;

    /**
     * The width-independent drive factor max(0.05, Vdd - Vt_eff)^alpha
     * of onCurrent(). It is the expensive part (one pow), so callers
     * evaluating several device widths in the same process region can
     * hoist it once and use the *FromFactor variants below, which are
     * bitwise identical to their plain counterparts when
     * @p factor == driveFactor(p).
     */
    double driveFactor(const ProcessParams &p) const;

    /** onCurrent() with a precomputed driveFactor(p). */
    double onCurrentFromFactor(double factor, const ProcessParams &p,
                               double width_um) const;

    /**
     * Subthreshold leakage current [uA] of an *off* device of
     * @p width_um: I ~ W/L * exp(-Vt_eff / (n v_T)).
     */
    double subthresholdLeak(const ProcessParams &p, double width_um) const;

    /**
     * The width-independent gate leakage [uA] of a device of
     * @p width_um: t_ox is not varied, so this component depends only
     * on the width and is hoistable out of per-region loops.
     */
    double gateLeak(double width_um) const;

    /**
     * Total static leakage [uA] including the flat gate-leakage
     * component (t_ox is not varied, so gate leakage is taken at its
     * nominal value and scales only with width).
     */
    double totalLeak(const ProcessParams &p, double width_um) const;

    /**
     * Delay [ps] of a gate of drive width @p width_um switching a
     * load of @p load_ff femtofarads (step response to 50%).
     */
    double gateDelay(const ProcessParams &p, double width_um,
                     double load_ff) const;

    /** gateDelay() with a precomputed driveFactor(p). */
    double gateDelayFromFactor(double factor, const ProcessParams &p,
                               double width_um, double load_ff) const;

    /**
     * Equivalent switching resistance [kOhm] of a driver of
     * @p width_um, for use as the source resistance of Elmore
     * ladders (kOhm * fF = ps).
     */
    double driveResistance(const ProcessParams &p, double width_um) const;

    /** driveResistance() with a precomputed driveFactor(p). */
    double driveResistanceFromFactor(double factor,
                                     const ProcessParams &p,
                                     double width_um) const;

    /** Input capacitance [fF] of a gate of @p width_um. */
    double gateCap(double width_um) const;

    /** Drain junction capacitance [fF] of a device of @p width_um. */
    double junctionCap(double width_um) const;

    const Technology &tech() const { return tech_; }

  private:
    const Technology &tech_;
    const double nominalGateLengthNm_ = 45.0;
};

} // namespace yac

#endif // YAC_CIRCUIT_TRANSISTOR_HH
