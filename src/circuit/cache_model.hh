/**
 * @file
 * Whole-cache circuit evaluation: combines the four way models into
 * per-chip timing and leakage, for either the regular layout or the
 * H-YAPD layout (whose reconfigured post-decoders cost ~2.5% delay,
 * Section 4.2).
 */

#ifndef YAC_CIRCUIT_CACHE_MODEL_HH
#define YAC_CIRCUIT_CACHE_MODEL_HH

#include <cstddef>
#include <vector>

#include "circuit/geometry.hh"
#include "circuit/technology.hh"
#include "circuit/way_model.hh"
#include "variation/sampler.hh"

namespace yac
{

/** Physical decoder layout. */
enum class CacheLayout
{
    Regular,    //!< conventional post-decoders (YAPD-capable)
    Horizontal, //!< H-YAPD post-decoders (+2.5% access delay)
};

/** Evaluated timing/leakage of one manufactured cache instance. */
struct CacheTiming
{
    CacheLayout layout = CacheLayout::Regular;
    std::vector<WayTiming> ways;

    /** Cache access latency: slowest way [ps]. */
    double delay() const;

    /** Total leakage over all ways [mW]. */
    double leakage() const;

    /** Latency of way @p w [ps]. */
    double wayDelay(std::size_t w) const;

    /** Leakage of way @p w [mW]. */
    double wayLeakage(std::size_t w) const;

    /**
     * Cache latency when horizontal region (bank) @p bank is powered
     * down in every way [ps]. Only meaningful for Horizontal layout.
     */
    double delayExcludingRegion(std::size_t bank) const;

    /**
     * Leakage when horizontal region @p bank is off: removes the
     * region's cell leakage in every way plus the fraction of the
     * peripheral leakage that can be gated (the paper notes parts of
     * the decoder/precharge/sense amps cannot be fully turned off).
     */
    double leakageExcludingRegion(std::size_t bank,
                                  double peripheral_fraction) const;

    /**
     * Generalized-granularity variants: the way's row ranges divided
     * into @p num_regions contiguous horizontal regions (num_regions
     * == banks reproduces the bank-granular pair above).
     */
    /// @{
    double delayExcludingRegionOf(std::size_t region,
                                  std::size_t num_regions) const;
    double leakageExcludingRegionOf(std::size_t region,
                                    std::size_t num_regions,
                                    double peripheral_fraction) const;
    /// @}
};

/**
 * Evaluates CacheVariationMap draws into CacheTiming. One instance
 * per layout; both layouts can evaluate the *same* variation draw,
 * mirroring the paper's reuse of identical process parameters for the
 * regular and horizontal architectures.
 */
class CacheModel
{
  public:
    CacheModel(const CacheGeometry &geom, const Technology &tech,
               CacheLayout layout);

    /** Evaluate one chip. */
    CacheTiming evaluate(const CacheVariationMap &map) const;

    /** Nominal (no-variation) access latency of this layout [ps]. */
    double nominalDelay() const;

    CacheLayout layout() const { return layout_; }
    const CacheGeometry &geometry() const { return geom_; }
    const Technology &technology() const { return tech_; }
    const WayModel &wayModel() const { return wayModel_; }

  private:
    CacheGeometry geom_;
    Technology tech_;
    CacheLayout layout_;
    WayModel wayModel_;
};

} // namespace yac

#endif // YAC_CIRCUIT_CACHE_MODEL_HH
