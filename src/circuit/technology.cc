#include "circuit/technology.hh"

namespace yac
{

Technology
defaultTechnology()
{
    Technology tech;
    // Calibrated values; see EXPERIMENTS.md "Model calibration".
    tech.vtRolloffPerL = 1.3;
    tech.delaySensitivity = 2.2;
    return tech;
}

} // namespace yac
