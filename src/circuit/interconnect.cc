#include "circuit/interconnect.hh"

#include <algorithm>

#include "util/logging.hh"

namespace yac
{

double
WireModel::resistancePerUm(const ProcessParams &p) const
{
    const double w = std::max(1e-3, p.metalWidth);
    const double t = std::max(1e-3, p.metalThickness);
    // ohm/um -> kOhm/um.
    return tech_.wireResistivityOhmUm / (w * t) * 1e-3;
}

double
WireModel::capacitancePerUm(const ProcessParams &p,
                            double coupling_factor) const
{
    const double eps = tech_.permittivityFfPerUm;
    const double w = std::max(1e-3, p.metalWidth);
    const double t = std::max(1e-3, p.metalThickness);
    const double h = std::max(1e-3, p.ildThickness);
    // Space shrinks when the line widens; keep a floor so the model
    // stays finite for extreme draws.
    const double space = std::max(0.05, tech_.wirePitchUm - w);

    const double plate = eps * w / h;
    // Empirical fringe term (weakly geometry dependent).
    const double fringe = eps * 1.1;
    const double sidewall = 2.0 * eps * t / space * coupling_factor;
    return plate + fringe + sidewall;
}

double
WireModel::wireCap(const ProcessParams &p, double length_um,
                   double coupling_factor) const
{
    return capacitancePerUm(p, coupling_factor) * length_um;
}

double
WireModel::wireRes(const ProcessParams &p, double length_um) const
{
    return resistancePerUm(p) * length_um;
}

double
WireModel::elmoreDelay(const ProcessParams &p, double drive_res_kohm,
                       double length_um, double load_ff,
                       double coupling_factor) const
{
    yac_assert(length_um >= 0.0, "wire length must be non-negative");
    const double c_wire = wireCap(p, length_um, coupling_factor);
    const double r_wire = wireRes(p, length_um);
    return 0.69 * drive_res_kohm * (c_wire + load_ff) +
        0.38 * r_wire * c_wire + 0.69 * r_wire * load_ff;
}

} // namespace yac
