/**
 * @file
 * Dynamic (switching) energy model for the cache, complementing the
 * leakage model: per-access energy from the switched capacitance of
 * each pipeline stage, and total power at a given access rate and
 * clock frequency.
 *
 * The paper's power constraint is dominated by leakage at 45 nm, but
 * its schemes also change dynamic power: a powered-down way (YAPD)
 * sheds its entire dynamic energy, an H-YAPD region sheds the array
 * portion, while VACA leaves dynamic power untouched. This module
 * quantifies those effects for the power-oriented benches and the
 * binning-economics analysis.
 */

#ifndef YAC_CIRCUIT_ENERGY_HH
#define YAC_CIRCUIT_ENERGY_HH

#include "circuit/geometry.hh"
#include "circuit/interconnect.hh"
#include "circuit/technology.hh"
#include "circuit/transistor.hh"
#include "variation/sampler.hh"

namespace yac
{

/** Per-access switched energy, decomposed by stage [pJ]. */
struct AccessEnergy
{
    double addressBus = 0.0;
    double decoder = 0.0;
    double wordLine = 0.0;
    double bitlines = 0.0;  //!< precharge + discharge of one bank
    double senseAmps = 0.0;
    double output = 0.0;

    double total() const
    {
        return addressBus + decoder + wordLine + bitlines + senseAmps +
            output;
    }
};

/**
 * Analytical per-way energy model. All energies are CV^2-style
 * estimates of the capacitance actually switched by one read access
 * (one bank active, one row, colsPerBank bitline pairs).
 */
class EnergyModel
{
  public:
    EnergyModel(const CacheGeometry &geom, const Technology &tech);

    /** Switched energy of one access to one way [pJ]. */
    AccessEnergy accessEnergy(const WayVariation &way) const;

    /**
     * Total power of one way [mW] at @p accesses_per_cycle average
     * activity and @p frequency_ghz clock: leakage + dynamic.
     *
     * @param leakage_mw The way's leakage from the timing model.
     */
    double wayPower(const WayVariation &way, double leakage_mw,
                    double accesses_per_cycle,
                    double frequency_ghz) const;

    const CacheGeometry &geometry() const { return geom_; }

  private:
    CacheGeometry geom_;
    Technology tech_;
    DeviceModel device_;
    WireModel wire_;
};

} // namespace yac

#endif // YAC_CIRCUIT_ENERGY_HH
