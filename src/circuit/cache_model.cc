#include "circuit/cache_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace yac
{

double
CacheTiming::delay() const
{
    yac_assert(!ways.empty(), "cache has no ways");
    double worst = 0.0;
    for (const WayTiming &w : ways)
        worst = std::max(worst, w.delay());
    return worst;
}

double
CacheTiming::leakage() const
{
    double sum = 0.0;
    for (const WayTiming &w : ways)
        sum += w.leakage();
    return sum;
}

double
CacheTiming::wayDelay(std::size_t w) const
{
    yac_assert(w < ways.size(), "way index out of range");
    return ways[w].delay();
}

double
CacheTiming::wayLeakage(std::size_t w) const
{
    yac_assert(w < ways.size(), "way index out of range");
    return ways[w].leakage();
}

double
CacheTiming::delayExcludingRegion(std::size_t bank) const
{
    yac_assert(!ways.empty(), "cache has no ways");
    double worst = 0.0;
    for (const WayTiming &w : ways)
        worst = std::max(worst, w.delayExcludingBank(bank));
    return worst;
}

double
CacheTiming::leakageExcludingRegion(std::size_t bank,
                                    double peripheral_fraction) const
{
    yac_assert(peripheral_fraction >= 0.0 && peripheral_fraction <= 1.0,
               "peripheral gating fraction must be in [0, 1]");
    double sum = 0.0;
    for (const WayTiming &w : ways) {
        const double region_share =
            1.0 / static_cast<double>(w.banks);
        sum += w.leakage() - w.bankCellLeakage(bank) -
            peripheral_fraction * region_share * w.peripheralLeakage;
    }
    return sum;
}

double
CacheTiming::delayExcludingRegionOf(std::size_t region,
                                    std::size_t num_regions) const
{
    yac_assert(!ways.empty(), "cache has no ways");
    double worst = 0.0;
    for (const WayTiming &w : ways) {
        worst = std::max(worst,
                         w.delayExcludingRegion(region, num_regions));
    }
    return worst;
}

double
CacheTiming::leakageExcludingRegionOf(std::size_t region,
                                      std::size_t num_regions,
                                      double peripheral_fraction) const
{
    yac_assert(peripheral_fraction >= 0.0 && peripheral_fraction <= 1.0,
               "peripheral gating fraction must be in [0, 1]");
    double sum = 0.0;
    for (const WayTiming &w : ways) {
        const double region_share =
            1.0 / static_cast<double>(num_regions);
        sum += w.leakage() -
            w.regionCellLeakage(region, num_regions) -
            peripheral_fraction * region_share * w.peripheralLeakage;
    }
    return sum;
}

CacheModel::CacheModel(const CacheGeometry &geom, const Technology &tech,
                       CacheLayout layout)
    : geom_(geom), tech_(tech), layout_(layout), wayModel_(geom_, tech_)
{
}

CacheTiming
CacheModel::evaluate(const CacheVariationMap &map) const
{
    yac_assert(map.ways.size() == geom_.numWays,
               "variation map way count mismatch");
    CacheTiming timing;
    timing.layout = layout_;
    timing.ways.reserve(map.ways.size());
    const double layout_factor =
        layout_ == CacheLayout::Horizontal ? tech_.hyapdDelayFactor : 1.0;
    for (const WayVariation &way : map.ways) {
        WayTiming wt = wayModel_.evaluate(way);
        if (layout_factor != 1.0) {
            for (double &d : wt.pathDelays)
                d *= layout_factor;
        }
        timing.ways.push_back(std::move(wt));
    }
    return timing;
}

double
CacheModel::nominalDelay() const
{
    const double layout_factor =
        layout_ == CacheLayout::Horizontal ? tech_.hyapdDelayFactor : 1.0;
    return wayModel_.nominalDelay() * layout_factor;
}

} // namespace yac
