#include "trace/metrics.hh"

namespace yac
{
namespace trace
{

Metrics &
Metrics::instance()
{
    static Metrics m;
    return m;
}

Counter &
Metrics::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_[name];
}

Gauge &
Metrics::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return gauges_[name];
}

PhaseTimer &
Metrics::phase(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return phases_[name];
}

MetricsSnapshot
Metrics::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, counter] : counters_)
        snap.counters[name] = counter.value();
    for (const auto &[name, gauge] : gauges_)
        snap.gauges[name] = gauge.value();
    for (const auto &[name, phase] : phases_)
        snap.phaseSeconds[name] = phase.seconds();
    return snap;
}

void
Metrics::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter.reset();
    for (auto &[name, gauge] : gauges_)
        gauge.reset();
    for (auto &[name, phase] : phases_)
        phase.reset();
}

} // namespace trace
} // namespace yac
