/**
 * @file
 * Always-on campaign metrics: named atomic counters, gauges and
 * phase-time accumulators. Unlike span recording (see trace.hh),
 * metrics are cheap enough to leave on unconditionally -- one
 * relaxed atomic add per update -- and they feed the phase/counter
 * sections of the BENCH_*.json lines (util/bench_report.hh).
 *
 * Registry entries are created on first use and never destroyed, so
 * the references returned by counter()/gauge()/phase() stay valid
 * for the process lifetime and can be cached by hot loops.
 */

#ifndef YAC_TRACE_METRICS_HH
#define YAC_TRACE_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "trace/trace.hh"

namespace yac
{
namespace trace
{

/** Monotonic event count (chips sampled, schemes applied, ...). */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (yield %, headroom, ...). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Accumulated time in one campaign phase across all threads.
 * Workers accumulate locally per chunk and publish once, so the
 * atomic is touched O(chunks) times, not O(chips).
 */
class PhaseTimer
{
  public:
    void addNanos(std::int64_t ns)
    {
        nanos_.fetch_add(ns, std::memory_order_relaxed);
    }

    std::int64_t nanos() const
    {
        return nanos_.load(std::memory_order_relaxed);
    }

    double seconds() const { return 1e-9 * double(nanos()); }

    void reset() { nanos_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> nanos_{0};
};

/**
 * RAII helper adding the scope's elapsed time to a PhaseTimer.
 * Always on; a clock read at each end and one atomic add. Use per
 * chunk or per campaign pass, not per chip.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(PhaseTimer &timer)
        : timer_(timer), startNs_(nowNanos())
    {
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

    ~ScopedPhase() { timer_.addNanos(nowNanos() - startNs_); }

  private:
    PhaseTimer &timer_;
    std::int64_t startNs_;
};

/** Point-in-time copy of every registered metric. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, double> phaseSeconds;
};

/** Process-global named-metric registry. */
class Metrics
{
  public:
    static Metrics &instance();

    /** Find-or-create; the reference is valid forever. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    PhaseTimer &phase(const std::string &name);

    MetricsSnapshot snapshot() const;

    /** Zero every registered metric (benches call between configs). */
    void reset();

  private:
    Metrics() = default;

    mutable std::mutex mutex_;
    // node-based maps: element addresses are stable across inserts.
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, PhaseTimer> phases_;
};

} // namespace trace
} // namespace yac

#endif // YAC_TRACE_METRICS_HH
