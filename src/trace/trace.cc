#include "trace/trace.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

namespace yac
{
namespace trace
{
namespace
{

using Clock = std::chrono::steady_clock;

/** Process-wide epoch so all timestamps share one origin. */
Clock::time_point
epoch()
{
    static const Clock::time_point t0 = Clock::now();
    return t0;
}

std::mutex &
threadNameMutex()
{
    static std::mutex m;
    return m;
}

/** tid -> name; survives recorder swaps (see setThreadName docs). */
std::map<std::uint32_t, std::string> &
threadNames()
{
    static std::map<std::uint32_t, std::string> names;
    return names;
}

void
appendEventJson(std::string &out, const TraceEvent &e)
{
    out += "{\"name\":\"";
    out += jsonEscape(e.name);
    out += "\",\"cat\":\"";
    out += jsonEscape(e.category);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"ts\":";
    out += std::to_string(e.tsUs);
    if (e.phase == 'X') {
        out += ",\"dur\":";
        out += std::to_string(e.durUs);
    }
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    if (!e.args.empty()) {
        out += ",\"args\":{";
        bool first = true;
        for (const auto &[key, value] : e.args) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(key);
            out += "\":";
            out += value; // pre-rendered JSON value
        }
        out += '}';
    }
    out += '}';
}

} // namespace

std::atomic<Recorder *> Recorder::current_{nullptr};

std::int64_t
nowMicros()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - epoch())
        .count();
}

std::int64_t
nowNanos()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - epoch())
        .count();
}

std::uint32_t
threadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
setThreadName(const std::string &name)
{
    const std::uint32_t tid = threadId();
    std::lock_guard<std::mutex> lock(threadNameMutex());
    threadNames()[tid] = name;
}

void
Recorder::record(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
Recorder::recordCounter(const std::string &name, double value)
{
    TraceEvent e;
    e.name = name;
    e.category = "metrics";
    e.phase = 'C';
    e.tsUs = nowMicros();
    e.tid = threadId();
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    e.args.emplace_back("value", buf);
    record(std::move(e));
}

std::size_t
Recorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<TraceEvent>
Recorder::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

std::string
Recorder::toJson() const
{
    const std::vector<TraceEvent> snapshot = events();

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    {
        // Thread-name metadata first, so viewers label every lane.
        std::lock_guard<std::mutex> lock(threadNameMutex());
        for (const auto &[tid, name] : threadNames()) {
            if (!first)
                out += ',';
            first = false;
            out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                   "\"tid\":";
            out += std::to_string(tid);
            out += ",\"args\":{\"name\":\"";
            out += jsonEscape(name);
            out += "\"}}";
        }
    }
    for (const TraceEvent &e : snapshot) {
        if (!first)
            out += ',';
        first = false;
        appendEventJson(out, e);
    }
    out += "],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

void
Recorder::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "yac: trace: cannot open '%s' for write\n",
                     path.c_str());
        std::abort();
    }
    out << toJson();
    if (!out) {
        std::fprintf(stderr, "yac: trace: write to '%s' failed\n",
                     path.c_str());
        std::abort();
    }
}

Span &
Span::arg(const char *key, const std::string &value)
{
    if (rec_ != nullptr)
        args_.emplace_back(key, '"' + jsonEscape(value) + '"');
    return *this;
}

void
Span::finish() noexcept
{
    TraceEvent e;
    e.name = name_;
    e.category = category_;
    e.phase = 'X';
    e.tsUs = startUs_;
    e.durUs = nowMicros() - startUs_;
    e.tid = threadId();
    e.args = std::move(args_);
    rec_->record(std::move(e));
}

Session::Session(std::string path) : path_(std::move(path))
{
    if (path_.empty())
        return;
    recorder_ = std::make_unique<Recorder>();
    setThreadName("main");
    previous_ = Recorder::exchangeCurrent(recorder_.get());
}

Session::~Session()
{
    if (!recorder_)
        return;
    Recorder::exchangeCurrent(previous_);
    recorder_->writeFile(path_);
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace trace
} // namespace yac
