/**
 * @file
 * Campaign observability: a span recorder emitting Chrome Trace
 * Event Format JSON (load the file in chrome://tracing or Perfetto).
 *
 * Design constraints, in order:
 *
 *  1. Tracing off must cost nothing on the hot path. A Span whose
 *     recorder is inactive is two relaxed atomic loads in the
 *     constructor and a null check in the destructor -- no clock
 *     read, no allocation, no lock.
 *  2. Recording must be thread-safe: campaign chunks run on the
 *     yac::parallel workers, and each finished span locks the
 *     recorder exactly once. Spans are coarse (phases, chunks,
 *     scenario simulations), so one mutex is not a bottleneck.
 *  3. Recording must never change results. Spans only read the
 *     clock; they touch no Rng and no campaign state, so campaign
 *     outputs are byte-identical with tracing on or off (asserted in
 *     tests/test_parallel.cc).
 *
 * The process has one *current* recorder (an atomic pointer).
 * Campaign runners install the CampaignConfig's sink for the
 * duration of a run; bench binaries install a trace::Session for the
 * whole process when --trace-out is given. Code that emits spans
 * never needs plumbing: Span finds the current recorder itself.
 */

#ifndef YAC_TRACE_TRACE_HH
#define YAC_TRACE_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace yac
{
namespace trace
{

/** Microseconds since the process's trace epoch (first use). */
std::int64_t nowMicros();

/** Nanosecond monotonic clock for phase accounting. */
std::int64_t nowNanos();

/**
 * Stable small id of the calling thread (0 for the first thread that
 * asks, then 1, 2, ...). Used as the Chrome trace "tid".
 */
std::uint32_t threadId();

/**
 * Register a human-readable name for the calling thread ("main",
 * "worker-3"). Names live in a process-global registry so they
 * survive recorder swaps; every recorder emits them as thread_name
 * metadata events when serializing.
 */
void setThreadName(const std::string &name);

/** One recorded event (Chrome trace "X", "C" or "i" phase). */
struct TraceEvent
{
    std::string name;
    std::string category;
    char phase = 'X';       //!< 'X' complete, 'C' counter, 'i' instant
    std::int64_t tsUs = 0;  //!< start timestamp [us since epoch]
    std::int64_t durUs = 0; //!< duration [us], 'X' only
    std::uint32_t tid = 0;

    /** Pre-rendered JSON values keyed by arg name ("42", "\"mcf\""). */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Thread-safe span/event sink. Instantiable (tests record into a
 * private recorder); at most one recorder is *current* at a time.
 */
class Recorder
{
  public:
    Recorder() = default;
    Recorder(const Recorder &) = delete;
    Recorder &operator=(const Recorder &) = delete;

    /** Cheap hot-path check; recording is on by default. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Append one event. Thread-safe. */
    void record(TraceEvent event);

    /** Convenience: record a counter sample at the current time. */
    void recordCounter(const std::string &name, double value);

    std::size_t eventCount() const;

    /** Snapshot of everything recorded so far. */
    std::vector<TraceEvent> events() const;

    /**
     * Full Chrome Trace Event Format document: all recorded events
     * plus thread_name metadata for every registered thread.
     */
    std::string toJson() const;

    /** Write toJson() to @p path; yac_fatal on I/O failure. */
    void writeFile(const std::string &path) const;

    /** The process-wide current recorder (nullptr = tracing off). */
    static Recorder *current()
    {
        return current_.load(std::memory_order_acquire);
    }

    /** Install @p recorder as current; returns the previous one. */
    static Recorder *exchangeCurrent(Recorder *recorder)
    {
        return current_.exchange(recorder, std::memory_order_acq_rel);
    }

  private:
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::atomic<bool> enabled_{true};

    static std::atomic<Recorder *> current_;
};

/** The current recorder iff it is enabled, else nullptr. */
inline Recorder *
activeRecorder()
{
    Recorder *r = Recorder::current();
    return (r != nullptr && r->enabled()) ? r : nullptr;
}

/** True iff spans created right now would be recorded. */
inline bool
active()
{
    return activeRecorder() != nullptr;
}

/**
 * RAII span: times the enclosing scope and records one complete
 * event on destruction. When no recorder is active at construction
 * the span is fully inert -- no clock read, no allocation.
 *
 * @p name and @p category must outlive the span (string literals).
 */
class Span
{
  public:
    explicit Span(const char *name, const char *category = "yac") noexcept
        : rec_(activeRecorder()), name_(name), category_(category),
          startUs_(rec_ != nullptr ? nowMicros() : 0)
    {
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span()
    {
        if (rec_ != nullptr)
            finish();
    }

    /** Attach a numeric argument (no-op when inert). */
    Span &
    arg(const char *key, std::int64_t value)
    {
        if (rec_ != nullptr)
            args_.emplace_back(key, std::to_string(value));
        return *this;
    }

    /** Attach a string argument (no-op when inert). */
    Span &arg(const char *key, const std::string &value);

    bool recording() const { return rec_ != nullptr; }

  private:
    void finish() noexcept;

    Recorder *rec_;
    const char *name_;
    const char *category_;
    std::int64_t startUs_;
    std::vector<std::pair<std::string, std::string>> args_;
};

/**
 * Scoped trace session: owns a Recorder, installs it as current for
 * its lifetime, and writes the Chrome trace file on destruction.
 * Constructed with an empty path it is inactive and costs nothing --
 * bench binaries construct one unconditionally from --trace-out.
 */
class Session
{
  public:
    explicit Session(std::string path);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    bool active() const { return recorder_ != nullptr; }

    /** The session's recorder, or nullptr when inactive. */
    Recorder *recorder() { return recorder_.get(); }

  private:
    std::string path_;
    std::unique_ptr<Recorder> recorder_;
    Recorder *previous_ = nullptr;
};

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &raw);

} // namespace trace
} // namespace yac

#endif // YAC_TRACE_TRACE_HH
