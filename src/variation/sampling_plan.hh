/**
 * @file
 * Sampling plans for the Monte Carlo yield campaigns: how the
 * die-level process draw is distributed, and the likelihood-ratio
 * bookkeeping that keeps tilted (importance-sampled) campaigns
 * unbiased.
 *
 * The naive plan reproduces today's pipeline exactly -- same draws,
 * same Rng stream, unit weights. The tilted plan shifts the die-level
 * mean of every varied parameter toward the slow corner (in sigma
 * units) and optionally widens the die sigma, while restricting the
 * proposal to the naive +/-3-sigma support so every chip carries a
 * strictly positive, finite importance weight p(x)/q(x). Tail events
 * like 3- and 4-way delay losses are driven by the die-level
 * systematic component, so tilting only the die draw concentrates
 * chips in the tail while the within-die hierarchy (conditioned on
 * the die) stays exactly the paper's model -- its densities cancel in
 * the likelihood ratio.
 */

#ifndef YAC_VARIATION_SAMPLING_PLAN_HH
#define YAC_VARIATION_SAMPLING_PLAN_HH

#include <string>

#include "variation/process_params.hh"

namespace yac
{

/** How a campaign draws its die-level process parameters. */
enum class SamplingMode
{
    Naive,  //!< the paper's distribution; unit weights
    Tilted, //!< mean-shifted / sigma-scaled importance sampling
};

/** Printable name of a sampling mode ("naive" / "tilted"). */
const char *samplingModeName(SamplingMode mode);

/**
 * A variance-reduction plan threaded through every campaign runner
 * via CampaignConfig::engine.sampling (see EngineSpec).
 *
 * `tilt` is the die-mean shift in sigma units along the unit-norm
 * slow-corner direction (tiltDirection), so its magnitude is the
 * effective z-space displacement: positive tilt concentrates chips in
 * the delay tail (Delay3/Delay4 losses), negative tilt in the fast,
 * leaky corner (strict leakage losses). `sigmaScale` widens (>1) or
 * narrows (<1) the die-level sigma.
 *
 * The tilted proposal is truncated to the naive +/-3-sigma window, so
 * its support equals the naive support: weights are strictly
 * positive, the estimator is unbiased for every population
 * functional, and tilted(0, 1) degenerates to the naive draw
 * sequence bit-for-bit.
 */
struct SamplingPlan
{
    SamplingMode mode = SamplingMode::Naive;
    double tilt = 0.0;       //!< die-mean shift [sigma units]
    double sigmaScale = 1.0; //!< die-sigma multiplier

    bool isNaive() const { return mode == SamplingMode::Naive; }

    /** yac_asserts the plan is runnable (finite tilt in [-3, 3],
     *  sigmaScale in [0.25, 4]); naive plans always validate. */
    void validate() const;

    /** One-line human-readable description for logs and tables. */
    std::string describe() const;

    static SamplingPlan naive() { return {}; }

    static SamplingPlan
    tilted(double tilt, double sigma_scale = 1.0)
    {
        SamplingPlan plan;
        plan.mode = SamplingMode::Tilted;
        plan.tilt = tilt;
        plan.sigmaScale = sigma_scale;
        return plan;
    }
};

/**
 * Component of the unit-norm slow-corner direction for one parameter:
 * the circuit model's access-delay gradient in die z space, normalized
 * to unit length. Gate length dominates (+0.89); in this model wider
 * and thicker wires also slow the cache (fixed-pitch coupling
 * capacitance beats the resistance win) while the ILD is nearly
 * inert. Because the direction has unit norm, a plan's `tilt` is an
 * effective tilt-sigma mean shift straight along the delay gradient:
 * positive tilt concentrates chips in the delay tail, negative tilt
 * in the fast (short-channel, leaky) corner.
 */
double tiltDirection(ProcessParam p);

/**
 * Build a plan from the shared command-line vocabulary
 * (--sampling=naive|tilted --tilt=T --sigma-scale=S). Fatal on an
 * unknown mode name.
 */
SamplingPlan samplingPlanFromName(const std::string &mode, double tilt,
                                  double sigma_scale);

} // namespace yac

#endif // YAC_VARIATION_SAMPLING_PLAN_HH
