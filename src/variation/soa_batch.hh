/**
 * @file
 * Structure-of-arrays chip batches for the fast sampling/evaluation
 * path. One ChipBatchSoa holds the variation draws of up to
 * `capacity` chips (a kStatChunk-aligned chunk in practice) as five
 * contiguous parameter planes -- one per varied process parameter
 * (L, V_t, W, T, H) -- instead of per-chip trees of small vectors.
 *
 * The batch is filled through VariationSampler::sampleWithDieTo with
 * an SoA sink, so it consumes the Rng stream exactly like the scalar
 * sampleWithDie() path: the two are bitwise identical by
 * construction (and by test: tests/test_soa_batch.cc).
 *
 * Buffers only ever grow (ensure() is a no-op once warm), which makes
 * the steady-state per-chunk hot path allocation-free -- see the
 * counting-allocator test in tests/test_soa_batch.cc.
 */

#ifndef YAC_VARIATION_SOA_BATCH_HH
#define YAC_VARIATION_SOA_BATCH_HH

#include <array>
#include <cstddef>
#include <vector>

#include "variation/process_params.hh"
#include "variation/sampler.hh"
#include "variation/sampling_plan.hh"

namespace yac
{

/**
 * SoA storage of sampled variation draws for a batch of chips.
 *
 * Each chip occupies `slotsPerChip` consecutive slots per plane; a
 * slot is one sampled circuit region. Per-way slot layout:
 *
 *   0: way base            (systematic component)
 *   1: decoder   2: precharge   3: senseAmp   4: outputDriver
 *   5 + b*G + g:           row group (b, g)
 *   5 + B*G + b*G + g:     worst cell of row group (b, g)
 *
 * Plane p stores parameter kAllProcessParams[p] of every slot:
 * plane[p][chip * slotsPerChip + slot].
 */
struct ChipBatchSoa
{
    VariationGeometry geometry;
    std::size_t capacity = 0;     //!< chips the planes can hold
    std::size_t slotsPerWay = 0;  //!< 5 + 2 * banks * groups
    std::size_t slotsPerChip = 0; //!< numWays * slotsPerWay

    /** Parameter planes, indexed [param][chip * slotsPerChip + slot]. */
    std::array<std::vector<double>, kNumProcessParams> plane;

    /**
     * Likelihood-ratio weight of each chip's die draw, indexed
     * [chip]. Exactly 1.0 for every chip sampled under a naive
     * SamplingPlan; strictly positive always.
     */
    std::vector<double> weight;

    /** Region-offset scratch reused across chips by the sampler. */
    std::vector<ProcessParams> regionScratch;

    /**
     * Block-draw scratch of the SIMD sampling front-end
     * (sampleChipSoaBlock): prefilled truncated z-scores, Gumbel
     * extremes and their source uniforms. Grow-only, like the
     * planes, so the warm per-chunk path stays allocation-free.
     */
    std::vector<double> zScratch;
    std::vector<double> gumbelScratch;
    std::vector<double> uScratch;

    /**
     * Size the planes for @p chips chips of geometry @p g. Only
     * reallocates when the geometry changes or the capacity grows, so
     * repeated calls from a worker's per-chunk loop are free.
     */
    void ensure(const VariationGeometry &g, std::size_t chips);

    std::size_t baseSlot(std::size_t w) const
    {
        return w * slotsPerWay;
    }

    /** blk: 0 decoder, 1 precharge, 2 senseAmp, 3 outputDriver. */
    std::size_t peripheralSlot(std::size_t w, std::size_t blk) const
    {
        return w * slotsPerWay + 1 + blk;
    }

    std::size_t rowGroupSlot(std::size_t w, std::size_t b,
                             std::size_t g) const
    {
        return w * slotsPerWay + 5 + b * geometry.rowGroupsPerBank + g;
    }

    std::size_t worstCellSlot(std::size_t w, std::size_t b,
                              std::size_t g) const
    {
        return w * slotsPerWay + 5 + geometry.rowGroupsPerWay() +
            b * geometry.rowGroupsPerBank + g;
    }

    /** Scatter one region's draw across the parameter planes. */
    void store(std::size_t chip, std::size_t slot,
               const ProcessParams &v)
    {
        const std::size_t at = chip * slotsPerChip + slot;
        for (std::size_t p = 0; p < kNumProcessParams; ++p)
            plane[p][at] = v.get(kAllProcessParams[p]);
    }

    /** Gather one region's draw back from the parameter planes. */
    ProcessParams load(std::size_t chip, std::size_t slot) const
    {
        const std::size_t at = chip * slotsPerChip + slot;
        ProcessParams v;
        for (std::size_t p = 0; p < kNumProcessParams; ++p)
            v.set(kAllProcessParams[p], plane[p][at]);
        return v;
    }
};

/** Write-side adapter: VariationSampler sink filling one SoA chip. */
class SoaChipSink
{
  public:
    SoaChipSink(ChipBatchSoa &soa, std::size_t chip)
        : soa_(soa), chip_(chip)
    {
    }

    void base(std::size_t w, const ProcessParams &p)
    {
        soa_.store(chip_, soa_.baseSlot(w), p);
    }

    void peripheral(std::size_t w, std::size_t blk,
                    const ProcessParams &p)
    {
        soa_.store(chip_, soa_.peripheralSlot(w, blk), p);
    }

    void rowGroup(std::size_t w, std::size_t b, std::size_t g,
                  const ProcessParams &p)
    {
        soa_.store(chip_, soa_.rowGroupSlot(w, b, g), p);
    }

    void worstCell(std::size_t w, std::size_t b, std::size_t g,
                   const ProcessParams &p)
    {
        soa_.store(chip_, soa_.worstCellSlot(w, b, g), p);
    }

  private:
    ChipBatchSoa &soa_;
    std::size_t chip_;
};

/**
 * Sample one chip around an external die draw into SoA slot @p chip.
 * Allocation-free once the batch is warm; bitwise identical draws to
 * VariationSampler::sampleWithDie.
 */
inline void
sampleChipWithDieSoa(const VariationSampler &sampler, Rng &rng,
                     const ProcessParams &die_base, ChipBatchSoa &soa,
                     std::size_t chip)
{
    SoaChipSink sink(soa, chip);
    sampler.sampleWithDieTo(rng, die_base, sink, soa.regionScratch);
}

/**
 * Sample one chip with its own die draw (the MonteCarlo::run per-chip
 * sequence) into SoA slot @p chip, recording its likelihood-ratio
 * weight in soa.weight[chip]. Matches VariationSampler::sample under
 * the default (naive) plan -- same draws, weight exactly 1.0.
 */
inline void
sampleChipSoa(const VariationSampler &sampler, Rng &rng,
              ChipBatchSoa &soa, std::size_t chip,
              const SamplingPlan &plan = {})
{
    double weight = 1.0;
    const ProcessParams die =
        sampler.table().sampleDie(rng, plan, weight);
    soa.weight[chip] = weight;
    sampleChipWithDieSoa(sampler, rng, die, soa, chip);
}

/**
 * SIMD front-end equivalent of sampleChipSoa: sample one chip into
 * SoA slot @p chip with the whole hierarchical draw prefilled as
 * blocks. The per-chip draw-order contract (docs/PERFORMANCE.md
 * section 4):
 *
 *   1. the die draw and its likelihood-ratio weight, scalar and
 *      byte-identical to the scalar engine (weights stay bitwise);
 *   2. one fillTruncatedNormals block of counts.truncatedZ z-scores
 *      through @p source (4-wide Box-Muller when source is Avx2);
 *   3. counts.gumbel uniforms, transformed to Gumbel extremes
 *      -ln(-ln u) with the vecmath log kernels;
 *
 * then the blocks are replayed through the sampler template in the
 * scalar draw order. Values differ from the scalar engine (block
 * consumption + kernel ulps) but are deterministic in (seed, chip).
 *
 * @p counts must be sampler.chipDrawCounts() -- hoisted to the
 * caller so the per-way/per-bank walk is not redone per chip.
 */
void sampleChipSoaBlock(const VariationSampler &sampler,
                        const NormalSource &source, Rng &rng,
                        ChipBatchSoa &soa, std::size_t chip,
                        const SamplingPlan &plan,
                        const ChipDrawCounts &counts);

/**
 * Block-draw steps 2-3 of sampleChipSoaBlock around an external die
 * draw (the multi-cache per-component sequence): the SIMD front-end
 * equivalent of sampleChipWithDieSoa.
 */
void sampleChipWithDieSoaBlock(const VariationSampler &sampler,
                               const NormalSource &source, Rng &rng,
                               const ProcessParams &die_base,
                               ChipBatchSoa &soa, std::size_t chip,
                               const ChipDrawCounts &counts);

} // namespace yac

#endif // YAC_VARIATION_SOA_BATCH_HH
