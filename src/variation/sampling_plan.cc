#include "variation/sampling_plan.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace yac
{

const char *
samplingModeName(SamplingMode mode)
{
    switch (mode) {
      case SamplingMode::Naive: return "naive";
      case SamplingMode::Tilted: return "tilted";
    }
    yac_panic("unknown SamplingMode");
}

void
SamplingPlan::validate() const
{
    if (isNaive())
        return;
    // A tilt beyond 3 sigma would push the proposal mean outside the
    // naive +/-3-sigma support; the truncated proposal would still be
    // unbiased but nearly all mass would sit at one support edge and
    // the weights would be useless.
    yac_assert(std::isfinite(tilt) && std::fabs(tilt) <= 3.0,
               "sampling tilt must be finite and within [-3, 3]");
    yac_assert(std::isfinite(sigmaScale) && sigmaScale >= 0.25 &&
                   sigmaScale <= 4.0,
               "sampling sigma scale must be in [0.25, 4]");
}

std::string
SamplingPlan::describe() const
{
    if (isNaive())
        return "naive";
    std::ostringstream os;
    os << "tilted(tilt=" << tilt << ", sigmaScale=" << sigmaScale << ")";
    return os.str();
}

double
tiltDirection(ProcessParam p)
{
    // Unit-norm direction of the circuit model's access-delay gradient
    // in die z space, measured by finite differences of the mean chip
    // delay at +/-1 die sigma per parameter (within-die variation
    // marginalized): L +49.1, V_t +11.4, W +17.3, T +12.8, H -4.4
    // ps/sigma. Gate length dominates; wider and thicker wires SLOW
    // this model (fixed-pitch coupling capacitance outweighs the
    // resistance win), and the ILD is nearly inert. Normalizing to a
    // unit vector makes `tilt` an effective tilt-sigma shift straight
    // along the delay gradient, so the importance-weight variance
    // grows like exp(tilt^2) instead of exp(5 tilt^2) for the naive
    // one-sigma-each corner tilt -- the difference between a 10x
    // variance reduction and a 10x variance blow-up on tail events.
    switch (p) {
      case ProcessParam::GateLength: return 0.893;
      case ProcessParam::ThresholdVoltage: return 0.207;
      case ProcessParam::MetalWidth: return 0.315;
      case ProcessParam::MetalThickness: return 0.233;
      case ProcessParam::IldThickness: return -0.079;
    }
    yac_panic("unknown ProcessParam");
}

SamplingPlan
samplingPlanFromName(const std::string &mode, double tilt,
                     double sigma_scale)
{
    if (mode == "naive")
        return SamplingPlan::naive();
    if (mode == "tilted") {
        SamplingPlan plan = SamplingPlan::tilted(tilt, sigma_scale);
        plan.validate();
        return plan;
    }
    yac_fatal("unknown sampling mode '", mode, "' (expected naive|tilted)");
}

} // namespace yac
