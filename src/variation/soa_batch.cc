#include "variation/soa_batch.hh"

namespace yac
{

namespace
{

bool
sameGeometry(const VariationGeometry &a, const VariationGeometry &b)
{
    return a.numWays == b.numWays && a.banksPerWay == b.banksPerWay &&
        a.rowGroupsPerBank == b.rowGroupsPerBank &&
        a.cellsPerRowGroup == b.cellsPerRowGroup;
}

} // namespace

void
ChipBatchSoa::ensure(const VariationGeometry &g, std::size_t chips)
{
    if (sameGeometry(geometry, g) && capacity >= chips &&
        slotsPerChip != 0)
        return;
    geometry = g;
    slotsPerWay = 5 + 2 * g.rowGroupsPerWay();
    slotsPerChip = g.numWays * slotsPerWay;
    capacity = chips > capacity ? chips : capacity;
    for (std::vector<double> &pl : plane) {
        if (pl.size() < capacity * slotsPerChip)
            pl.resize(capacity * slotsPerChip);
    }
    if (weight.size() < capacity)
        weight.resize(capacity, 1.0);
    if (regionScratch.size() < g.banksPerWay)
        regionScratch.resize(g.banksPerWay);
}

} // namespace yac
