#include "variation/soa_batch.hh"

#include "util/vecmath.hh"

namespace yac
{

namespace
{

bool
sameGeometry(const VariationGeometry &a, const VariationGeometry &b)
{
    return a.numWays == b.numWays && a.banksPerWay == b.banksPerWay &&
        a.rowGroupsPerBank == b.rowGroupsPerBank &&
        a.cellsPerRowGroup == b.cellsPerRowGroup;
}

} // namespace

void
ChipBatchSoa::ensure(const VariationGeometry &g, std::size_t chips)
{
    if (sameGeometry(geometry, g) && capacity >= chips &&
        slotsPerChip != 0)
        return;
    geometry = g;
    slotsPerWay = 5 + 2 * g.rowGroupsPerWay();
    slotsPerChip = g.numWays * slotsPerWay;
    capacity = chips > capacity ? chips : capacity;
    for (std::vector<double> &pl : plane) {
        if (pl.size() < capacity * slotsPerChip)
            pl.resize(capacity * slotsPerChip);
    }
    if (weight.size() < capacity)
        weight.resize(capacity, 1.0);
    if (regionScratch.size() < g.banksPerWay)
        regionScratch.resize(g.banksPerWay);
}

void
sampleChipSoaBlock(const VariationSampler &sampler,
                   const NormalSource &source, Rng &rng,
                   ChipBatchSoa &soa, std::size_t chip,
                   const SamplingPlan &plan,
                   const ChipDrawCounts &counts)
{
    // 1. Die draw + weight: scalar, first out of the fresh per-chip
    // stream -- byte-identical to the scalar engine, which is why
    // likelihood-ratio weights stay bitwise across engines.
    double weight = 1.0;
    const ProcessParams die =
        sampler.table().sampleDie(rng, plan, weight);
    soa.weight[chip] = weight;
    sampleChipWithDieSoaBlock(sampler, source, rng, die, soa, chip,
                              counts);
}

void
sampleChipWithDieSoaBlock(const VariationSampler &sampler,
                          const NormalSource &source, Rng &rng,
                          const ProcessParams &die_base,
                          ChipBatchSoa &soa, std::size_t chip,
                          const ChipDrawCounts &counts)
{
    if (soa.zScratch.size() < counts.truncatedZ)
        soa.zScratch.resize(counts.truncatedZ);
    if (soa.gumbelScratch.size() < counts.gumbel)
        soa.gumbelScratch.resize(counts.gumbel);
    if (soa.uScratch.size() < counts.gumbel)
        soa.uScratch.resize(counts.gumbel);

    // 2. One block of truncated z-scores for the whole chip.
    source.fillTruncatedNormals(rng, soa.zScratch.data(),
                                counts.truncatedZ);

    // 3. Worst-cell Gumbel extremes: draw the uniforms scalar (the
    // cheap part), then batch both logs of -ln(-ln u).
    for (std::size_t i = 0; i < counts.gumbel; ++i)
        soa.uScratch[i] = rng.uniform(1e-12, 1.0);
    vecmath::logArray(soa.uScratch.data(), soa.gumbelScratch.data(),
                      counts.gumbel);
    for (std::size_t i = 0; i < counts.gumbel; ++i)
        soa.gumbelScratch[i] = -soa.gumbelScratch[i];
    vecmath::logArray(soa.gumbelScratch.data(),
                      soa.gumbelScratch.data(), counts.gumbel);
    for (std::size_t i = 0; i < counts.gumbel; ++i)
        soa.gumbelScratch[i] = -soa.gumbelScratch[i];

    // Replay the blocks through the one sampler template, in the
    // scalar draw order.
    BlockNormalDraws draws{soa.zScratch.data(),
                           soa.gumbelScratch.data()};
    SoaChipSink sink(soa, chip);
    sampler.sampleWithDieToDraws(draws, die_base, sink,
                                 soa.regionScratch);
}

} // namespace yac
