#include "variation/correlation.hh"

#include <algorithm>

#include "util/logging.hh"

namespace yac
{

MeshRelation
CorrelationModel::meshRelation(std::size_t way_index)
{
    switch (way_index) {
      case 0: return MeshRelation::Self;
      case 1: return MeshRelation::Horizontal;
      case 2: return MeshRelation::Vertical;
      case 3: return MeshRelation::Diagonal;
      default:
        yac_panic("2x2 mesh only has four ways, got index ", way_index);
    }
}

double
CorrelationModel::wayFactor(std::size_t way_index) const
{
    switch (meshRelation(way_index)) {
      case MeshRelation::Self: return 0.0;
      case MeshRelation::Vertical: return verticalFactor_;
      case MeshRelation::Horizontal: return horizontalFactor_;
      case MeshRelation::Diagonal: return diagonalFactor_;
    }
    yac_panic("unknown mesh relation");
}

void
CorrelationModel::scaleWayFactors(double scale)
{
    yac_assert(scale >= 0.0, "scale must be non-negative");
    verticalFactor_ = std::min(1.0, verticalFactor_ * scale);
    horizontalFactor_ = std::min(1.0, horizontalFactor_ * scale);
    diagonalFactor_ = std::min(1.0, diagonalFactor_ * scale);
}

} // namespace yac
