#include "variation/sampler.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace yac
{

namespace
{

/**
 * Expected maximum (in sigma units) of n standard normal draws, and
 * the Gumbel scale of its fluctuation -- used for the worst cell of a
 * row group under random dopant fluctuation.
 */
struct ExtremeStats
{
    double location; //!< a_n: expected extreme
    double scale;    //!< b_n: Gumbel scale of the extreme
};

ExtremeStats
normalExtreme(std::size_t n)
{
    yac_assert(n >= 2, "extreme statistics need n >= 2");
    const double ln_n = std::log(static_cast<double>(n));
    const double b = std::sqrt(2.0 * ln_n);
    const double a =
        b - (std::log(ln_n) + std::log(4.0 * M_PI)) / (2.0 * b);
    return {a, 1.0 / b};
}

} // namespace

VariationSampler::VariationSampler(VariationTable table,
                                   CorrelationModel correlation,
                                   VariationGeometry geometry)
    : table_(table), correlation_(correlation), geometry_(geometry)
{
    yac_assert(geometry_.numWays >= 1 && geometry_.numWays <= 4,
               "the 2x2 mesh correlation model supports 1-4 ways");
    yac_assert(geometry_.banksPerWay > 0, "need at least one bank");
    yac_assert(geometry_.rowGroupsPerBank > 0,
               "need at least one row group");
    // normalExtreme() degenerates below two cells (log log n of a
    // one-cell group is undefined); reject the geometry up front with
    // a clear message instead of deep inside the sampling loop.
    yac_assert(geometry_.cellsPerRowGroup >= 2,
               "cellsPerRowGroup must be >= 2: the worst-cell "
               "extreme-value statistics need at least two cells "
               "per row group (got ", geometry_.cellsPerRowGroup, ")");
}

VariationSampler::VariationSampler()
    : VariationSampler(VariationTable(), CorrelationModel(),
                       VariationGeometry())
{
}

CacheVariationMap
VariationSampler::sample(Rng &rng) const
{
    // Way 0 carries the per-die draw: a fresh full-range sample of the
    // Table 1 distribution. The other ways are re-centered around it
    // with their mesh correlation factor.
    return sampleWithDie(rng, table_.sampleDie(rng, 1.0));
}

CacheVariationMap
VariationSampler::sampleWithDie(Rng &rng,
                                const ProcessParams &die_base) const
{
    CacheVariationMap map;
    map.geometry = geometry_;
    map.ways.resize(geometry_.numWays);

    // Chip-common systematic offset of each horizontal region: the
    // same physical row range deviates consistently in every way
    // (layout-position dependent systematic variation, Section 2).
    std::vector<ProcessParams> region_offset(geometry_.banksPerWay);
    for (std::size_t b = 0; b < geometry_.banksPerWay; ++b) {
        const ProcessParams draw = table_.sampleAround(
            rng, die_base, correlation_.regionSystematicFactor());
        ProcessParams offset;
        for (ProcessParam p : kAllProcessParams)
            offset.set(p, draw.get(p) - die_base.get(p));
        region_offset[b] = offset;
    }

    for (std::size_t w = 0; w < geometry_.numWays; ++w) {
        WayVariation &way = map.ways[w];
        const double way_factor = correlation_.wayFactor(w);
        way.base = (way_factor == 0.0)
            ? die_base
            : table_.sampleAround(rng, die_base, way_factor);

        const double peri = correlation_.peripheralFactor();
        way.decoder = table_.sampleAround(rng, way.base, peri);
        way.precharge = table_.sampleAround(rng, way.base, peri);
        way.senseAmp = table_.sampleAround(rng, way.base, peri);
        way.outputDriver = table_.sampleAround(rng, way.base, peri);

        way.rowGroups.resize(geometry_.banksPerWay);
        way.worstCell.resize(geometry_.banksPerWay);
        for (std::size_t b = 0; b < geometry_.banksPerWay; ++b) {
            way.rowGroups[b].resize(geometry_.rowGroupsPerBank);
            way.worstCell[b].resize(geometry_.rowGroupsPerBank);
            // The group mean combines the way's systematic component
            // with the region's chip-common systematic offset.
            ProcessParams bank_mean = way.base;
            for (ProcessParam p : kAllProcessParams) {
                bank_mean.set(p, bank_mean.get(p) +
                                 region_offset[b].get(p));
            }
            for (std::size_t g = 0; g < geometry_.rowGroupsPerBank; ++g) {
                const ProcessParams group = table_.sampleAround(
                    rng, bank_mean, correlation_.rowFactor());
                way.rowGroups[b][g] = group;
                // The slowest cell in the group: a draw at the bit
                // factor around the group parameters, plus the Gumbel
                // extreme of the group's random-dopant V_t mismatch
                // (the read-current-limiting cell of the row group).
                ProcessParams worst = table_.sampleAround(
                    rng, group, correlation_.bitFactor());
                const ExtremeStats ex =
                    normalExtreme(geometry_.cellsPerRowGroup);
                const double u = rng.uniform(1e-12, 1.0);
                const double gumbel = -std::log(-std::log(u));
                const double vt_drop = table_.randomDopantSigmaMv *
                    (ex.location + ex.scale * (gumbel - 0.5772156649));
                worst.thresholdVoltage += vt_drop;
                way.worstCell[b][g] = worst;
            }
        }
    }
    return map;
}

} // namespace yac
