#include "variation/sampler.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace yac
{

namespace
{

/**
 * Expected maximum (in sigma units) of n standard normal draws, and
 * the Gumbel scale of its fluctuation -- used for the worst cell of a
 * row group under random dopant fluctuation.
 */
struct ExtremeStats
{
    double location; //!< a_n: expected extreme
    double scale;    //!< b_n: Gumbel scale of the extreme
};

ExtremeStats
normalExtreme(std::size_t n)
{
    yac_assert(n >= 2, "extreme statistics need n >= 2");
    const double ln_n = std::log(static_cast<double>(n));
    const double b = std::sqrt(2.0 * ln_n);
    const double a =
        b - (std::log(ln_n) + std::log(4.0 * M_PI)) / (2.0 * b);
    return {a, 1.0 / b};
}

} // namespace

VariationSampler::VariationSampler(VariationTable table,
                                   CorrelationModel correlation,
                                   VariationGeometry geometry)
    : table_(table), correlation_(correlation), geometry_(geometry)
{
    yac_assert(geometry_.numWays >= 1 && geometry_.numWays <= 4,
               "the 2x2 mesh correlation model supports 1-4 ways");
    yac_assert(geometry_.banksPerWay > 0, "need at least one bank");
    yac_assert(geometry_.rowGroupsPerBank > 0,
               "need at least one row group");
    // normalExtreme() degenerates below two cells (log log n of a
    // one-cell group is undefined); reject the geometry up front with
    // a clear message instead of deep inside the sampling loop.
    yac_assert(geometry_.cellsPerRowGroup >= 2,
               "cellsPerRowGroup must be >= 2: the worst-cell "
               "extreme-value statistics need at least two cells "
               "per row group (got ", geometry_.cellsPerRowGroup, ")");
    const ExtremeStats ex = normalExtreme(geometry_.cellsPerRowGroup);
    extremeLocation_ = ex.location;
    extremeScale_ = ex.scale;
}

VariationSampler::VariationSampler()
    : VariationSampler(VariationTable(), CorrelationModel(),
                       VariationGeometry())
{
}

ChipDrawCounts
VariationSampler::chipDrawCounts() const
{
    // Mirror of sampleWithDieToDraws: one truncatedZ per parameter
    // with non-zero scaled sigma per region draw (sampleAroundWith
    // skips zero-sigma parameters), one gumbel per row group. Kept
    // adjacent to the template's structure; prop_sampling_simd
    // cross-checks it against an instrumented replay.
    const auto per_region = [this](double factor) {
        std::size_t n = 0;
        for (ProcessParam p : kAllProcessParams) {
            if (table_.spec(p).sigma() * factor != 0.0)
                ++n;
        }
        return n;
    };

    ChipDrawCounts counts;
    counts.truncatedZ += geometry_.banksPerWay *
        per_region(correlation_.regionSystematicFactor());
    for (std::size_t w = 0; w < geometry_.numWays; ++w) {
        const double way_factor = correlation_.wayFactor(w);
        if (way_factor != 0.0)
            counts.truncatedZ += per_region(way_factor);
        counts.truncatedZ +=
            4 * per_region(correlation_.peripheralFactor());
        counts.truncatedZ += geometry_.banksPerWay *
            geometry_.rowGroupsPerBank *
            (per_region(correlation_.rowFactor()) +
             per_region(correlation_.bitFactor()));
    }
    counts.gumbel = geometry_.numWays * geometry_.banksPerWay *
        geometry_.rowGroupsPerBank;
    return counts;
}

CacheVariationMap
VariationSampler::sample(Rng &rng) const
{
    // Way 0 carries the per-die draw: a fresh full-range sample of the
    // Table 1 distribution. The other ways are re-centered around it
    // with their mesh correlation factor.
    return sampleWithDie(rng, table_.sampleDie(rng, 1.0));
}

namespace
{

/** AoS sink: writes draws into a CacheVariationMap with pre-sized
 *  nested vectors. */
struct MapSink
{
    CacheVariationMap &map;

    void base(std::size_t w, const ProcessParams &p)
    {
        map.ways[w].base = p;
    }

    void peripheral(std::size_t w, std::size_t blk,
                    const ProcessParams &p)
    {
        WayVariation &way = map.ways[w];
        switch (blk) {
        case 0: way.decoder = p; break;
        case 1: way.precharge = p; break;
        case 2: way.senseAmp = p; break;
        default: way.outputDriver = p; break;
        }
    }

    void rowGroup(std::size_t w, std::size_t b, std::size_t g,
                  const ProcessParams &p)
    {
        map.ways[w].rowGroups[b][g] = p;
    }

    void worstCell(std::size_t w, std::size_t b, std::size_t g,
                   const ProcessParams &p)
    {
        map.ways[w].worstCell[b][g] = p;
    }
};

} // namespace

CacheVariationMap
VariationSampler::sampleWithDie(Rng &rng,
                                const ProcessParams &die_base) const
{
    CacheVariationMap map;
    map.geometry = geometry_;
    map.ways.resize(geometry_.numWays);
    for (WayVariation &way : map.ways) {
        way.rowGroups.resize(geometry_.banksPerWay);
        way.worstCell.resize(geometry_.banksPerWay);
        for (std::size_t b = 0; b < geometry_.banksPerWay; ++b) {
            way.rowGroups[b].resize(geometry_.rowGroupsPerBank);
            way.worstCell[b].resize(geometry_.rowGroupsPerBank);
        }
    }

    MapSink sink{map};
    std::vector<ProcessParams> region_scratch;
    sampleWithDieTo(rng, die_base, sink, region_scratch);
    return map;
}

} // namespace yac
