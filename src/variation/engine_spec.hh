/**
 * @file
 * EngineSpec: the one struct that names a campaign's numeric engine.
 *
 * Four knobs used to travel separately through every option struct
 * and config (--simd, --sampling, --tilt, --sigma-scale); EngineSpec
 * consolidates them so adding an engine knob touches one place, and
 * so a (seed, chips, EngineSpec) triple fully determines a
 * campaign's bytes. CampaignOptions carries one (parsed from the
 * canonical --engine=key=value,... flag or the legacy alias flags),
 * CampaignConfig carries one, and every runner reads engine.simd /
 * engine.sampling instead of loose fields.
 */

#ifndef YAC_VARIATION_ENGINE_SPEC_HH
#define YAC_VARIATION_ENGINE_SPEC_HH

#include <string>

#include "util/vecmath.hh"
#include "variation/sampling_plan.hh"

namespace yac
{

/**
 * How a campaign prices per-chip CPI degradation.
 *
 *  - Sim: the exact pipeline simulator (simulateBenchmark) for every
 *    chip; the reference oracle, bitwise-stable.
 *  - Surrogate: the fitted coefficient table for every chip, even
 *    outside the validated feature envelope.
 *  - Auto: the surrogate inside its validated feature envelope, the
 *    exact simulator outside it.
 */
enum class CpiMode
{
    Sim,
    Surrogate,
    Auto,
};

/** Lower-case spelling used by --engine cpi= and trace args. */
const char *cpiModeName(CpiMode mode);

/** Inverse of cpiModeName; yac_fatal on an unknown spelling. */
CpiMode cpiModeFromName(const std::string &name);

/** A campaign's numeric engine: SIMD kernel set + sampling plan. */
struct EngineSpec
{
    /** SIMD kernel selection, resolved against the host once per
     *  run by vecmath::resolveSimdKernel. Off (the default) is the
     *  scalar bitwise-reference engine. */
    vecmath::SimdMode simd = vecmath::SimdMode::Off;

    /** How die-level process parameters are drawn. The tilt /
     *  sigmaScale fields are only meaningful when mode == Tilted;
     *  plan() normalizes them away for naive specs. */
    SamplingPlan sampling;

    /** How CPI-carrying campaigns price per-chip degradation. */
    CpiMode cpi = CpiMode::Sim;

    /** Coefficient-table path for cpi=surrogate|auto; ignored (and
     *  left out of describe()) for cpi=sim. */
    std::string surrogate;

    /**
     * The effective sampling plan: a naive spec yields
     * SamplingPlan::naive() regardless of what the (tilted-only)
     * tilt/sigmaScale knobs hold, exactly like the historical
     * samplingPlanFromName -- so a CLI default tilt never leaks into
     * a naive campaign's config, trace args or checkpoint hash.
     */
    SamplingPlan plan() const;

    /** yac_asserts the spec is runnable (delegates to the plan). */
    void validate() const;

    /** One-line description, e.g. "simd=avx2 tilted(+2.00, x1.00)". */
    std::string describe() const;
};

} // namespace yac

#endif // YAC_VARIATION_ENGINE_SPEC_HH
