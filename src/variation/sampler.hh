/**
 * @file
 * Hierarchical sampling of per-region process parameters for a whole
 * cache: way base -> peripheral blocks and row groups.
 *
 * One CacheVariationMap is the Monte Carlo input for one simulated
 * chip: the circuit model consumes it to produce path latencies and
 * leakage, exactly as one HSPICE run did in the paper.
 */

#ifndef YAC_VARIATION_SAMPLER_HH
#define YAC_VARIATION_SAMPLER_HH

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/normal_source.hh"
#include "util/rng.hh"
#include "variation/correlation.hh"
#include "variation/process_params.hh"

namespace yac
{

/** Physical granularity of the variation map. */
struct VariationGeometry
{
    std::size_t numWays = 4;         //!< associativity (2x2 mesh)
    std::size_t banksPerWay = 4;     //!< banks inside one way
    std::size_t rowGroupsPerBank = 8; //!< row groups (paths) per bank
    std::size_t cellsPerRowGroup = 1024; //!< cells behind one path

    std::size_t rowGroupsPerWay() const
    {
        return banksPerWay * rowGroupsPerBank;
    }
};

/** Per-way process parameter draws. */
struct WayVariation
{
    ProcessParams base;         //!< way-level systematic component
    ProcessParams decoder;      //!< row decoder chain
    ProcessParams precharge;    //!< bitline precharge circuits
    ProcessParams senseAmp;     //!< sense amplifiers
    ProcessParams outputDriver; //!< output drivers / data bus

    /** Row-group draws, indexed [bank][group]. */
    std::vector<std::vector<ProcessParams>> rowGroups;

    /**
     * Worst (highest) V_t-independent leakage indicator per row group
     * is derived by the circuit model; here we additionally keep a
     * per-row-group *cell mismatch* scale drawn at the bit factor to
     * stand in for the slowest cell of the group.
     */
    std::vector<std::vector<ProcessParams>> worstCell;
};

/** Full per-chip variation map. */
struct CacheVariationMap
{
    VariationGeometry geometry;
    std::vector<WayVariation> ways;
};

/**
 * Exact number of deviates one chip's hierarchical draw consumes --
 * a pure function of the table (which parameters have non-zero
 * sigma), the correlation factors and the geometry. The SIMD block
 * sampler prefills exactly these many truncated z-scores and Gumbel
 * extremes before replaying them through the sampler template.
 */
struct ChipDrawCounts
{
    std::size_t truncatedZ = 0; //!< |z| <= kSigmaCut rejections
    std::size_t gumbel = 0;     //!< worst-cell extreme draws
};

/**
 * Draws CacheVariationMap instances according to the paper's
 * hierarchical correlation scheme.
 */
class VariationSampler
{
  public:
    /**
     * @param table Table 1 nominal/sigma specification.
     * @param correlation Correlation factors.
     * @param geometry Map granularity.
     */
    VariationSampler(VariationTable table, CorrelationModel correlation,
                     VariationGeometry geometry);

    /** Convenience constructor with all paper defaults. */
    VariationSampler();

    /** Sample one chip's variation map. Deterministic in @p rng. */
    CacheVariationMap sample(Rng &rng) const;

    /**
     * Sample a map around an externally supplied die-level draw --
     * used when several components (for example L1I and L1D) share
     * one die and must see correlated process parameters.
     */
    CacheVariationMap sampleWithDie(Rng &rng,
                                    const ProcessParams &die_base) const;

    /**
     * The one sampling implementation: draws a chip's regions in the
     * canonical order and hands each draw to @p sink instead of
     * materializing a CacheVariationMap. Both the scalar
     * sampleWithDie() (AoS sink) and the batched SoA fast path
     * (soa_batch.hh) funnel through this template, which structurally
     * guarantees they consume the Rng stream identically -- the
     * foundation of the scalar-vs-batched bitwise-identity contract.
     *
     * The sink receives, in draw order per way:
     *   base(w, p), peripheral(w, 0..3, p)  [decoder, precharge,
     *   senseAmp, outputDriver], then per (bank, group):
     *   rowGroup(w, b, g, p) and worstCell(w, b, g, p).
     *
     * @p region_scratch is caller-owned scratch (resized to
     * banksPerWay); reusing it across chips keeps the hot path free
     * of heap allocations.
     */
    template <typename Sink>
    void sampleWithDieTo(Rng &rng, const ProcessParams &die_base,
                         Sink &&sink,
                         std::vector<ProcessParams> &region_scratch) const;

    /**
     * Engine-templated core of sampleWithDieTo: identical draw
     * *order*, but every deviate comes from @p draws (truncatedZ()
     * per non-degenerate parameter, gumbel() per row group) instead
     * of directly from an Rng. sampleWithDieTo wraps this with the
     * scalar on-demand engine; the SIMD front-end replays prefilled
     * blocks through it with BlockNormalDraws.
     */
    template <typename Draws, typename Sink>
    void sampleWithDieToDraws(
        Draws &draws, const ProcessParams &die_base, Sink &&sink,
        std::vector<ProcessParams> &region_scratch) const;

    /** Deviates one sampleWithDieToDraws invocation consumes. */
    ChipDrawCounts chipDrawCounts() const;

    const VariationTable &table() const { return table_; }
    const CorrelationModel &correlation() const { return correlation_; }
    const VariationGeometry &geometry() const { return geometry_; }

  private:
    VariationTable table_;
    CorrelationModel correlation_;
    VariationGeometry geometry_;

    /**
     * Gumbel extreme-value constants of normalExtreme(cellsPerRowGroup)
     * -- a pure function of the geometry, computed once here instead
     * of a log/sqrt pair per row group in the sampling loop.
     */
    double extremeLocation_ = 0.0;
    double extremeScale_ = 0.0;
};

template <typename Sink>
void
VariationSampler::sampleWithDieTo(
    Rng &rng, const ProcessParams &die_base, Sink &&sink,
    std::vector<ProcessParams> &region_scratch) const
{
    // Scalar on-demand engine: every deviate comes from the Rng the
    // instant it is needed, byte-for-byte the historical draw order.
    const NormalSource source;
    ScalarNormalDraws draws{rng, source};
    sampleWithDieToDraws(draws, die_base, sink, region_scratch);
}

template <typename Draws, typename Sink>
void
VariationSampler::sampleWithDieToDraws(
    Draws &draws, const ProcessParams &die_base, Sink &&sink,
    std::vector<ProcessParams> &region_scratch) const
{
    // Chip-common systematic offset of each horizontal region: the
    // same physical row range deviates consistently in every way
    // (layout-position dependent systematic variation, Section 2).
    region_scratch.resize(geometry_.banksPerWay);
    for (std::size_t b = 0; b < geometry_.banksPerWay; ++b) {
        const ProcessParams draw = table_.sampleAroundWith(
            draws, die_base, correlation_.regionSystematicFactor());
        ProcessParams offset;
        for (ProcessParam p : kAllProcessParams)
            offset.set(p, draw.get(p) - die_base.get(p));
        region_scratch[b] = offset;
    }

    for (std::size_t w = 0; w < geometry_.numWays; ++w) {
        const double way_factor = correlation_.wayFactor(w);
        const ProcessParams base = (way_factor == 0.0)
            ? die_base
            : table_.sampleAroundWith(draws, die_base, way_factor);
        sink.base(w, base);

        const double peri = correlation_.peripheralFactor();
        for (std::size_t blk = 0; blk < 4; ++blk) {
            const ProcessParams p =
                table_.sampleAroundWith(draws, base, peri);
            sink.peripheral(w, blk, p);
        }

        for (std::size_t b = 0; b < geometry_.banksPerWay; ++b) {
            // The group mean combines the way's systematic component
            // with the region's chip-common systematic offset.
            ProcessParams bank_mean = base;
            for (ProcessParam p : kAllProcessParams) {
                bank_mean.set(p, bank_mean.get(p) +
                                 region_scratch[b].get(p));
            }
            for (std::size_t g = 0; g < geometry_.rowGroupsPerBank;
                 ++g) {
                const ProcessParams group = table_.sampleAroundWith(
                    draws, bank_mean, correlation_.rowFactor());
                sink.rowGroup(w, b, g, group);
                // The slowest cell in the group: a draw at the bit
                // factor around the group parameters, plus the Gumbel
                // extreme of the group's random-dopant V_t mismatch
                // (the read-current-limiting cell of the row group).
                ProcessParams worst = table_.sampleAroundWith(
                    draws, group, correlation_.bitFactor());
                const double gumbel = draws.gumbel();
                const double vt_drop = table_.randomDopantSigmaMv *
                    (extremeLocation_ +
                     extremeScale_ * (gumbel - 0.5772156649));
                worst.thresholdVoltage += vt_drop;
                sink.worstCell(w, b, g, worst);
            }
        }
    }
}

} // namespace yac

#endif // YAC_VARIATION_SAMPLER_HH
