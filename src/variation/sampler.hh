/**
 * @file
 * Hierarchical sampling of per-region process parameters for a whole
 * cache: way base -> peripheral blocks and row groups.
 *
 * One CacheVariationMap is the Monte Carlo input for one simulated
 * chip: the circuit model consumes it to produce path latencies and
 * leakage, exactly as one HSPICE run did in the paper.
 */

#ifndef YAC_VARIATION_SAMPLER_HH
#define YAC_VARIATION_SAMPLER_HH

#include <cstddef>
#include <vector>

#include "variation/correlation.hh"
#include "variation/process_params.hh"

namespace yac
{

class Rng;

/** Physical granularity of the variation map. */
struct VariationGeometry
{
    std::size_t numWays = 4;         //!< associativity (2x2 mesh)
    std::size_t banksPerWay = 4;     //!< banks inside one way
    std::size_t rowGroupsPerBank = 8; //!< row groups (paths) per bank
    std::size_t cellsPerRowGroup = 1024; //!< cells behind one path

    std::size_t rowGroupsPerWay() const
    {
        return banksPerWay * rowGroupsPerBank;
    }
};

/** Per-way process parameter draws. */
struct WayVariation
{
    ProcessParams base;         //!< way-level systematic component
    ProcessParams decoder;      //!< row decoder chain
    ProcessParams precharge;    //!< bitline precharge circuits
    ProcessParams senseAmp;     //!< sense amplifiers
    ProcessParams outputDriver; //!< output drivers / data bus

    /** Row-group draws, indexed [bank][group]. */
    std::vector<std::vector<ProcessParams>> rowGroups;

    /**
     * Worst (highest) V_t-independent leakage indicator per row group
     * is derived by the circuit model; here we additionally keep a
     * per-row-group *cell mismatch* scale drawn at the bit factor to
     * stand in for the slowest cell of the group.
     */
    std::vector<std::vector<ProcessParams>> worstCell;
};

/** Full per-chip variation map. */
struct CacheVariationMap
{
    VariationGeometry geometry;
    std::vector<WayVariation> ways;
};

/**
 * Draws CacheVariationMap instances according to the paper's
 * hierarchical correlation scheme.
 */
class VariationSampler
{
  public:
    /**
     * @param table Table 1 nominal/sigma specification.
     * @param correlation Correlation factors.
     * @param geometry Map granularity.
     */
    VariationSampler(VariationTable table, CorrelationModel correlation,
                     VariationGeometry geometry);

    /** Convenience constructor with all paper defaults. */
    VariationSampler();

    /** Sample one chip's variation map. Deterministic in @p rng. */
    CacheVariationMap sample(Rng &rng) const;

    /**
     * Sample a map around an externally supplied die-level draw --
     * used when several components (for example L1I and L1D) share
     * one die and must see correlated process parameters.
     */
    CacheVariationMap sampleWithDie(Rng &rng,
                                    const ProcessParams &die_base) const;

    const VariationTable &table() const { return table_; }
    const CorrelationModel &correlation() const { return correlation_; }
    const VariationGeometry &geometry() const { return geometry_; }

  private:
    VariationTable table_;
    CorrelationModel correlation_;
    VariationGeometry geometry_;
};

} // namespace yac

#endif // YAC_VARIATION_SAMPLER_HH
