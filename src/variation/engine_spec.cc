#include "variation/engine_spec.hh"

#include "util/logging.hh"

namespace yac
{

const char *
cpiModeName(CpiMode mode)
{
    switch (mode) {
      case CpiMode::Sim:
        return "sim";
      case CpiMode::Surrogate:
        return "surrogate";
      case CpiMode::Auto:
        return "auto";
    }
    yac_fatal("unknown CpiMode ", static_cast<int>(mode));
}

CpiMode
cpiModeFromName(const std::string &name)
{
    if (name == "sim")
        return CpiMode::Sim;
    if (name == "surrogate")
        return CpiMode::Surrogate;
    if (name == "auto")
        return CpiMode::Auto;
    yac_fatal("cpi mode wants sim, surrogate or auto, got '", name,
              "'");
}

SamplingPlan
EngineSpec::plan() const
{
    if (sampling.isNaive())
        return SamplingPlan::naive();
    return SamplingPlan::tilted(sampling.tilt, sampling.sigmaScale);
}

void
EngineSpec::validate() const
{
    plan().validate();
}

std::string
EngineSpec::describe() const
{
    std::string out = std::string("simd=") +
        vecmath::simdModeName(simd) + " " + plan().describe();
    // cpi=sim is the historical default; keep describe() (and the
    // trace args / golden strings built from it) unchanged for it.
    if (cpi != CpiMode::Sim) {
        out += std::string(" cpi=") + cpiModeName(cpi);
        if (!surrogate.empty())
            out += "(" + surrogate + ")";
    }
    return out;
}

} // namespace yac
