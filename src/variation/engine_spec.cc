#include "variation/engine_spec.hh"

namespace yac
{

SamplingPlan
EngineSpec::plan() const
{
    if (sampling.isNaive())
        return SamplingPlan::naive();
    return SamplingPlan::tilted(sampling.tilt, sampling.sigmaScale);
}

void
EngineSpec::validate() const
{
    plan().validate();
}

std::string
EngineSpec::describe() const
{
    return std::string("simd=") + vecmath::simdModeName(simd) + " " +
        plan().describe();
}

} // namespace yac
