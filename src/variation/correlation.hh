/**
 * @file
 * Spatial-correlation model for intra-die process variations.
 *
 * The paper expresses correlation through "correlation factors": a
 * child region's parameters are drawn around the parent's values with
 * the Table 1 range scaled by the factor. A *small* factor therefore
 * means *strong* correlation (the child barely deviates from its
 * parent) -- note this is the opposite sense of a correlation
 * coefficient, exactly as the paper defines it.
 *
 * Factors used (Section 3, from Friedberg et al.):
 *   - bit within a cache block:            0.01
 *   - row to row:                          0.05
 *   - way on the same vertical mesh line:  0.45
 *   - way on the same horizontal line:     0.375
 *   - way on the same diagonal:            0.7125
 * assuming the four ways are laid out on a 2x2 mesh with way 0 as the
 * reference in the top-left corner.
 */

#ifndef YAC_VARIATION_CORRELATION_HH
#define YAC_VARIATION_CORRELATION_HH

#include <cstddef>

namespace yac
{

/**
 * Relative placement of a way with respect to the reference way on
 * the 2x2 mesh.
 */
enum class MeshRelation
{
    Self,       //!< the reference way itself
    Vertical,   //!< same column, other row
    Horizontal, //!< same row, other column
    Diagonal,   //!< opposite corner
};

/**
 * Correlation factors for every level of the cache hierarchy.
 *
 * All factors are "sigma scales" in the paper's sense: the Table 1
 * sigma is multiplied by the factor when drawing the child around the
 * parent. Factor 0 pins the child to the parent (perfect correlation);
 * factor 1 makes the child a fresh full-range draw (no correlation).
 */
class CorrelationModel
{
  public:
    /** Paper defaults. */
    CorrelationModel() = default;

    /** Mesh relation of way @p way_index relative to way 0 (2x2 mesh,
     *  row-major: 0 = top-left, 1 = top-right, 2 = bottom-left,
     *  3 = bottom-right). */
    static MeshRelation meshRelation(std::size_t way_index);

    /** Correlation factor between way 0 and way @p way_index. */
    double wayFactor(std::size_t way_index) const;

    /** Factor for a row group within a way. */
    double rowFactor() const { return rowFactor_; }

    /**
     * Factor of the chip-common *systematic* component of each
     * horizontal region (bank row range). Systematic intra-die
     * variation is layout-position dependent (CMP/OPC; Section 2 of
     * the paper), so the same physical row range deviates the same
     * way in every cache way -- the effect H-YAPD exploits: "either
     * all the upper-most rows of the ways or all the middle rows will
     * violate" (Section 4.2).
     */
    double regionSystematicFactor() const { return regionFactor_; }

    /** Factor for a bit/cell within a block. */
    double bitFactor() const { return bitFactor_; }

    /** Factor for peripheral blocks (decoder, precharge, sense amps,
     *  output drivers) within a way. */
    double peripheralFactor() const { return peripheralFactor_; }

    /** @name Overrides (used by the ablation benches). */
    /// @{
    void verticalFactor(double f) { verticalFactor_ = f; }
    void horizontalFactor(double f) { horizontalFactor_ = f; }
    void diagonalFactor(double f) { diagonalFactor_ = f; }
    void rowFactor(double f) { rowFactor_ = f; }
    void bitFactor(double f) { bitFactor_ = f; }
    void peripheralFactor(double f) { peripheralFactor_ = f; }
    void regionSystematicFactor(double f) { regionFactor_ = f; }

    double verticalFactor() const { return verticalFactor_; }
    double horizontalFactor() const { return horizontalFactor_; }
    double diagonalFactor() const { return diagonalFactor_; }

    /** Scale the three inter-way factors by @p scale (clamped to 1).
     *  Used by the correlation-sweep ablation. */
    void scaleWayFactors(double scale);
    /// @}

  private:
    double verticalFactor_ = 0.45;
    double horizontalFactor_ = 0.375;
    double diagonalFactor_ = 0.7125;
    double rowFactor_ = 0.05;
    double bitFactor_ = 0.01;
    double peripheralFactor_ = 0.5;
    double regionFactor_ = 1.0;
};

} // namespace yac

#endif // YAC_VARIATION_CORRELATION_HH
