/**
 * @file
 * Process-variation parameters and their nominal/3-sigma specification
 * (Table 1 of the paper).
 *
 * Five parameters are varied, exactly the set modeled by the paper:
 * device gate length (L_gate) and threshold voltage (V_t), and the
 * interconnect metal line width (W), metal thickness (T) and
 * inter-layer dielectric thickness (H).
 */

#ifndef YAC_VARIATION_PROCESS_PARAMS_HH
#define YAC_VARIATION_PROCESS_PARAMS_HH

#include <array>
#include <cstddef>
#include <string>

namespace yac
{

class Rng;
struct SamplingPlan;

/** The five sources of variation, in Table 1 order. */
enum class ProcessParam
{
    GateLength,       //!< L_gate [nm]
    ThresholdVoltage, //!< V_t [mV]
    MetalWidth,       //!< W [um]
    MetalThickness,   //!< T [um]
    IldThickness,     //!< H [um]
};

/** Number of varied parameters. */
constexpr std::size_t kNumProcessParams = 5;

/** All parameters, iterable. */
constexpr std::array<ProcessParam, kNumProcessParams> kAllProcessParams = {
    ProcessParam::GateLength,
    ProcessParam::ThresholdVoltage,
    ProcessParam::MetalWidth,
    ProcessParam::MetalThickness,
    ProcessParam::IldThickness,
};

/** Human-readable name of a parameter. */
const char *processParamName(ProcessParam p);

/**
 * A concrete draw of the five process parameters for one circuit
 * region. Units follow Table 1: nm, mV, um, um, um.
 */
struct ProcessParams
{
    double gateLength = 0.0;       //!< L_gate [nm]
    double thresholdVoltage = 0.0; //!< V_t [mV]
    double metalWidth = 0.0;       //!< W [um]
    double metalThickness = 0.0;   //!< T [um]
    double ildThickness = 0.0;     //!< H [um]

    /**
     * Access by enumerator. Inline: the SoA batch path scatters and
     * gathers every region draw through get/set, so these sit on the
     * campaign hot path and must fold into plain loads and stores.
     */
    double get(ProcessParam p) const
    {
        switch (p) {
          case ProcessParam::GateLength: return gateLength;
          case ProcessParam::ThresholdVoltage: return thresholdVoltage;
          case ProcessParam::MetalWidth: return metalWidth;
          case ProcessParam::MetalThickness: return metalThickness;
          case ProcessParam::IldThickness: return ildThickness;
        }
        return 0.0; // unreachable for valid enumerators
    }

    /** Mutate by enumerator. */
    void set(ProcessParam p, double value)
    {
        switch (p) {
          case ProcessParam::GateLength: gateLength = value; return;
          case ProcessParam::ThresholdVoltage:
            thresholdVoltage = value;
            return;
          case ProcessParam::MetalWidth: metalWidth = value; return;
          case ProcessParam::MetalThickness:
            metalThickness = value;
            return;
          case ProcessParam::IldThickness: ildThickness = value; return;
        }
    }

    bool operator==(const ProcessParams &other) const = default;
};

/**
 * Nominal value and absolute one-sigma deviation of a parameter.
 * Table 1 specifies 3-sigma as a percentage of nominal; sigma() is
 * that percentage divided by three.
 */
struct VariationSpec
{
    double nominal = 0.0;        //!< nominal (mean) value
    double threeSigmaPct = 0.0;  //!< 3-sigma as a fraction of nominal

    /** Absolute one-sigma deviation. */
    double sigma() const { return nominal * threeSigmaPct / 3.0; }
};

/**
 * The full Table 1: nominal and 3-sigma specification for every
 * process parameter at the modeled 45 nm node.
 */
class VariationTable
{
  public:
    /** Table 1 defaults (45 nm PTM, Nassif limits). */
    VariationTable();

    /**
     * One-sigma random-dopant-fluctuation V_t mismatch of a single
     * minimum-size SRAM cell [mV]. This purely random component is on
     * top of the Table 1 (spatially correlated) V_t variation; the
     * sampler uses it to draw the *worst* cell of each row group as a
     * Gumbel extreme.
     */
    double randomDopantSigmaMv = 85.0;

    /** Specification of one parameter. */
    const VariationSpec &spec(ProcessParam p) const;

    /** Replace the specification of one parameter. */
    void spec(ProcessParam p, VariationSpec s);

    /** All-nominal parameter draw. */
    ProcessParams nominalParams() const;

    /**
     * Draw parameters around @p mean with each sigma scaled by
     * @p sigma_scale, truncated at +/- 3 sigma of the *scaled* range.
     *
     * This implements the paper's hierarchical correlation rule: use
     * the parent draw as the new mean and scale the Table 1 range by
     * the correlation factor.
     */
    ProcessParams sampleAround(Rng &rng, const ProcessParams &mean,
                               double sigma_scale) const;

    /**
     * Engine-templated core of sampleAround: each parameter with a
     * non-zero scaled sigma consumes one truncatedZ() from @p draws
     * (a standard normal rejected to |z| <= kSigmaCut) and becomes
     * mean + sigma * z; zero-sigma parameters copy the mean and
     * consume nothing. sampleAround(Rng&) routes through this with a
     * scalar on-demand engine, the SoA block sampler with prefilled
     * blocks, so the two cannot drift.
     */
    template <typename Draws>
    ProcessParams sampleAroundWith(Draws &draws,
                                   const ProcessParams &mean,
                                   double sigma_scale) const
    {
        ProcessParams out;
        for (ProcessParam p : kAllProcessParams) {
            const double sigma = spec(p).sigma() * sigma_scale;
            out.set(p, sigma == 0.0
                           ? mean.get(p)
                           : mean.get(p) + sigma * draws.truncatedZ());
        }
        return out;
    }

    /** Draw a top-level (die) parameter set around nominal. */
    ProcessParams sampleDie(Rng &rng, double sigma_scale = 1.0) const;

    /**
     * Draw a die parameter set under a sampling plan, producing the
     * likelihood-ratio weight p/q of the draw in @p weight.
     *
     * A naive plan delegates to sampleDie(rng) -- identical Rng
     * consumption, identical values, weight exactly 1.0. A tilted
     * plan draws each parameter from a mean-shifted, sigma-scaled
     * normal truncated to the *naive* +/-3-sigma window, so the
     * proposal support equals the naive support and the weight is
     * always finite and strictly positive.
     */
    ProcessParams sampleDie(Rng &rng, const SamplingPlan &plan,
                            double &weight) const;

  private:
    std::array<VariationSpec, kNumProcessParams> specs_;
};

} // namespace yac

#endif // YAC_VARIATION_PROCESS_PARAMS_HH
