#include "variation/process_params.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace yac
{

const char *
processParamName(ProcessParam p)
{
    switch (p) {
      case ProcessParam::GateLength: return "L_gate";
      case ProcessParam::ThresholdVoltage: return "V_t";
      case ProcessParam::MetalWidth: return "W";
      case ProcessParam::MetalThickness: return "T";
      case ProcessParam::IldThickness: return "H";
    }
    yac_panic("unknown ProcessParam");
}

VariationTable::VariationTable()
{
    // Table 1: nominal and 3-sigma variation for the 45 nm node.
    specs_[static_cast<std::size_t>(ProcessParam::GateLength)] =
        {45.0, 0.10};   // 45 nm, +/- 10%
    specs_[static_cast<std::size_t>(ProcessParam::ThresholdVoltage)] =
        {220.0, 0.18};  // 220 mV, +/- 18%
    specs_[static_cast<std::size_t>(ProcessParam::MetalWidth)] =
        {0.25, 0.33};   // 0.25 um, +/- 33%
    specs_[static_cast<std::size_t>(ProcessParam::MetalThickness)] =
        {0.55, 0.33};   // 0.55 um, +/- 33%
    specs_[static_cast<std::size_t>(ProcessParam::IldThickness)] =
        {0.15, 0.35};   // 0.15 um, +/- 35%
}

const VariationSpec &
VariationTable::spec(ProcessParam p) const
{
    return specs_[static_cast<std::size_t>(p)];
}

void
VariationTable::spec(ProcessParam p, VariationSpec s)
{
    yac_assert(s.nominal > 0.0, "nominal value must be positive");
    yac_assert(s.threeSigmaPct >= 0.0 && s.threeSigmaPct < 1.0,
               "3-sigma fraction must be in [0, 1)");
    specs_[static_cast<std::size_t>(p)] = s;
}

ProcessParams
VariationTable::nominalParams() const
{
    ProcessParams out;
    for (ProcessParam p : kAllProcessParams)
        out.set(p, spec(p).nominal);
    return out;
}

ProcessParams
VariationTable::sampleAround(Rng &rng, const ProcessParams &mean,
                             double sigma_scale) const
{
    yac_assert(sigma_scale >= 0.0, "sigma scale must be non-negative");
    ProcessParams out;
    for (ProcessParam p : kAllProcessParams) {
        const double sigma = spec(p).sigma() * sigma_scale;
        out.set(p, rng.truncatedNormal(mean.get(p), sigma, 3.0));
    }
    return out;
}

ProcessParams
VariationTable::sampleDie(Rng &rng, double sigma_scale) const
{
    return sampleAround(rng, nominalParams(), sigma_scale);
}

} // namespace yac
