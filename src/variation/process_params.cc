#include "variation/process_params.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/normal_source.hh"
#include "util/rng.hh"
#include "variation/sampling_plan.hh"

namespace yac
{

namespace
{

/** P(a <= Z <= b) for a standard normal Z. */
double
normalMass(double a, double b)
{
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    return 0.5 * (std::erf(b * inv_sqrt2) - std::erf(a * inv_sqrt2));
}

} // namespace

const char *
processParamName(ProcessParam p)
{
    switch (p) {
      case ProcessParam::GateLength: return "L_gate";
      case ProcessParam::ThresholdVoltage: return "V_t";
      case ProcessParam::MetalWidth: return "W";
      case ProcessParam::MetalThickness: return "T";
      case ProcessParam::IldThickness: return "H";
    }
    yac_panic("unknown ProcessParam");
}

VariationTable::VariationTable()
{
    // Table 1: nominal and 3-sigma variation for the 45 nm node.
    specs_[static_cast<std::size_t>(ProcessParam::GateLength)] =
        {45.0, 0.10};   // 45 nm, +/- 10%
    specs_[static_cast<std::size_t>(ProcessParam::ThresholdVoltage)] =
        {220.0, 0.18};  // 220 mV, +/- 18%
    specs_[static_cast<std::size_t>(ProcessParam::MetalWidth)] =
        {0.25, 0.33};   // 0.25 um, +/- 33%
    specs_[static_cast<std::size_t>(ProcessParam::MetalThickness)] =
        {0.55, 0.33};   // 0.55 um, +/- 33%
    specs_[static_cast<std::size_t>(ProcessParam::IldThickness)] =
        {0.15, 0.35};   // 0.15 um, +/- 35%
}

const VariationSpec &
VariationTable::spec(ProcessParam p) const
{
    return specs_[static_cast<std::size_t>(p)];
}

void
VariationTable::spec(ProcessParam p, VariationSpec s)
{
    yac_assert(s.nominal > 0.0, "nominal value must be positive");
    yac_assert(s.threeSigmaPct >= 0.0 && s.threeSigmaPct < 1.0,
               "3-sigma fraction must be in [0, 1)");
    specs_[static_cast<std::size_t>(p)] = s;
}

ProcessParams
VariationTable::nominalParams() const
{
    ProcessParams out;
    for (ProcessParam p : kAllProcessParams)
        out.set(p, spec(p).nominal);
    return out;
}

ProcessParams
VariationTable::sampleAround(Rng &rng, const ProcessParams &mean,
                             double sigma_scale) const
{
    yac_assert(sigma_scale >= 0.0, "sigma scale must be non-negative");
    // Route through the engine template with the scalar on-demand
    // source: bitwise-identical to the historical per-parameter
    // rng.truncatedNormal(mean, sigma, kSigmaCut) loop.
    const NormalSource source;
    ScalarNormalDraws draws{rng, source};
    return sampleAroundWith(draws, mean, sigma_scale);
}

ProcessParams
VariationTable::sampleDie(Rng &rng, double sigma_scale) const
{
    return sampleAround(rng, nominalParams(), sigma_scale);
}

ProcessParams
VariationTable::sampleDie(Rng &rng, const SamplingPlan &plan,
                          double &weight) const
{
    if (plan.isNaive()) {
        weight = 1.0;
        return sampleDie(rng, 1.0);
    }

    // The naive die draw truncates every parameter at +/-3 sigma; the
    // tilted proposal is restricted by rejection to that same window,
    // so p and q share a support and p/q is strictly positive. The
    // per-parameter density ratio, with zq the accepted proposal
    // z-score and zp = (x - nominal)/sigma:
    //
    //   p/q = sigmaScale * (Zq/Zp) * exp((zq^2 - zp^2) / 2)
    //
    // where Zp and Zq are the normal masses of the acceptance windows.
    // Accumulated in log space: five factors spanning orders of
    // magnitude would otherwise lose precision.
    constexpr double kCut = kSigmaCut;
    const double naive_mass = normalMass(-kCut, kCut);
    ProcessParams out;
    double log_weight = 0.0;
    for (ProcessParam p : kAllProcessParams) {
        const VariationSpec &s = spec(p);
        const double sigma = s.sigma();
        if (sigma == 0.0) {
            // No variation: both distributions are the same point
            // mass. Match the naive path and consume no randomness.
            out.set(p, s.nominal);
            continue;
        }
        const double shift = plan.tilt * tiltDirection(p);
        const double a = (-kCut - shift) / plan.sigmaScale;
        const double b = (kCut - shift) / plan.sigmaScale;
        double zq = 0.0;
        for (;;) {
            zq = rng.normal();
            if (zq >= a && zq <= b)
                break;
        }
        const double value =
            (s.nominal + shift * sigma) + (plan.sigmaScale * sigma) * zq;
        // z-score of the draw under the naive distribution, computed
        // in z space (not from `value`) so a zero-tilt unit-scale plan
        // yields weight == 1.0 exactly, not merely to rounding.
        const double zp = shift + plan.sigmaScale * zq;
        log_weight += std::log(plan.sigmaScale) +
                      std::log(normalMass(a, b) / naive_mass) +
                      0.5 * (zq * zq - zp * zp);
        out.set(p, value);
    }
    weight = std::exp(log_weight);
    return out;
}

} // namespace yac
