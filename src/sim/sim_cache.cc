#include "sim/sim_cache.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <type_traits>
#include <vector>

#include "trace/metrics.hh"
#include "util/logging.hh"

namespace yac
{

namespace
{

// The persisted entries are raw SimStats bytes; any change to the
// struct must bump kFormatVersion (the sizeof check below catches
// most accidental drift).
static_assert(std::is_trivially_copyable<SimStats>::value,
              "SimStats must stay trivially copyable for the "
              "sim-cache binary format");

constexpr char kMagic[8] = {'Y', 'A', 'C', 'S', 'I', 'M', 'C', '1'};
constexpr std::uint32_t kFormatVersion = 1;

/** FNV-1a, the canonical-byte-stream hasher behind SimCache::key. */
class Fnv1a
{
  public:
    void bytes(const void *data, std::size_t n)
    {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ull;
        }
    }

    void u64(std::uint64_t v) { bytes(&v, sizeof v); }

    void f64(double v)
    {
        // Hash the bit pattern: distinguishes -0.0/
        // denormals/everything the value itself would conflate.
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

void
hashProfile(Fnv1a &h, const BenchmarkProfile &p)
{
    // The name is semantic: TraceGenerator folds it into the stream
    // seed, so equal numbers under different names are different
    // traces.
    h.str(p.name);
    h.u64(p.isFp ? 1 : 0);
    h.f64(p.loadFrac);
    h.f64(p.storeFrac);
    h.f64(p.branchFrac);
    h.f64(p.mulFrac);
    h.f64(p.fpOpFrac);
    h.f64(p.mispredictRate);
    h.f64(p.streamFrac);
    h.f64(p.l2Frac);
    h.f64(p.farFrac);
    h.u64(p.streamLoopKb);
    h.u64(p.l2RegionKb);
    h.u64(p.workingSetKb);
    h.u64(p.instFootprintKb);
    h.f64(p.hotJumpFrac);
    h.f64(p.depP);
    h.f64(p.chaseFrac);
    h.u64(p.parallelChains);
}

void
hashCache(Fnv1a &h, const CacheParams &c)
{
    // CacheParams::name is cosmetic and deliberately excluded.
    h.u64(c.sizeBytes);
    h.u64(c.numWays);
    h.u64(c.blockBytes);
    h.u64(static_cast<std::uint64_t>(c.hitLatency));
    h.u64(c.wayLatency.size());
    for (int lat : c.wayLatency)
        h.u64(static_cast<std::uint64_t>(lat));
    h.u64(c.wayMask);
    h.u64(c.horizontalMode ? 1 : 0);
    h.u64(c.numHRegions);
    h.u64(c.disabledHRegion);
}

void
hashConfig(Fnv1a &h, const SimConfig &c)
{
    // SimConfig::label is cosmetic and deliberately excluded: two
    // schemes reaching the same degraded configuration share the
    // entry.
    h.u64(static_cast<std::uint64_t>(c.core.fetchWidth));
    h.u64(static_cast<std::uint64_t>(c.core.dispatchWidth));
    h.u64(static_cast<std::uint64_t>(c.core.issueWidth));
    h.u64(static_cast<std::uint64_t>(c.core.commitWidth));
    h.u64(static_cast<std::uint64_t>(c.core.iqSize));
    h.u64(static_cast<std::uint64_t>(c.core.robSize));
    h.u64(static_cast<std::uint64_t>(c.core.schedToExec));
    h.u64(static_cast<std::uint64_t>(c.core.intPorts));
    h.u64(static_cast<std::uint64_t>(c.core.fpPorts));
    h.u64(static_cast<std::uint64_t>(c.core.memPorts));
    h.u64(static_cast<std::uint64_t>(c.core.loadBypassDepth));
    h.u64(static_cast<std::uint64_t>(c.core.assumedLoadLatency));
    h.u64(static_cast<std::uint64_t>(c.core.redirectPenalty));
    hashCache(h, c.hierarchy.l1i);
    hashCache(h, c.hierarchy.l1d);
    hashCache(h, c.hierarchy.l2);
    h.u64(static_cast<std::uint64_t>(c.hierarchy.memoryLatency));
    h.u64(c.warmupInsts);
    h.u64(c.measureInsts);
    h.u64(c.seed);
}

void
saveAtExit()
{
    SimCache::instance().saveIfPersisting();
}

} // namespace

SimCache &
SimCache::instance()
{
    static SimCache cache;
    return cache;
}

std::uint64_t
SimCache::key(const BenchmarkProfile &profile, const SimConfig &config)
{
    Fnv1a h;
    h.u64(kFormatVersion);
    hashProfile(h, profile);
    hashConfig(h, config);
    return h.value();
}

bool
SimCache::enabled() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return enabled_;
}

void
SimCache::setEnabled(bool on)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    enabled_ = on;
}

bool
SimCache::lookup(std::uint64_t key, SimStats *out) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    *out = it->second;
    return true;
}

void
SimCache::insert(std::uint64_t key, const SimStats &stats)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    entries_[key] = stats;
}

void
SimCache::clear()
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    entries_.clear();
}

std::size_t
SimCache::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return entries_.size();
}

bool
SimCache::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;

    char magic[sizeof kMagic];
    std::uint32_t version = 0;
    std::uint32_t stats_bytes = 0;
    std::uint64_t count = 0;
    in.read(magic, sizeof magic);
    in.read(reinterpret_cast<char *>(&version), sizeof version);
    in.read(reinterpret_cast<char *>(&stats_bytes), sizeof stats_bytes);
    in.read(reinterpret_cast<char *>(&count), sizeof count);
    if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0 ||
        version != kFormatVersion || stats_bytes != sizeof(SimStats)) {
        yac_warn("sim-cache: rejecting ", path,
                " (bad header); starting cold");
        return false;
    }

    // Entries, then a trailing checksum over their bytes.
    std::vector<std::pair<std::uint64_t, SimStats>> loaded;
    loaded.reserve(static_cast<std::size_t>(count));
    Fnv1a check;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t key = 0;
        SimStats stats;
        in.read(reinterpret_cast<char *>(&key), sizeof key);
        in.read(reinterpret_cast<char *>(&stats), sizeof stats);
        if (!in) {
            yac_warn("sim-cache: rejecting ", path,
                    " (truncated); starting cold");
            return false;
        }
        check.u64(key);
        check.bytes(&stats, sizeof stats);
        loaded.emplace_back(key, stats);
    }
    std::uint64_t checksum = 0;
    in.read(reinterpret_cast<char *>(&checksum), sizeof checksum);
    if (!in || checksum != check.value()) {
        yac_warn("sim-cache: rejecting ", path,
                " (checksum mismatch); starting cold");
        return false;
    }

    std::unique_lock<std::shared_mutex> lock(mutex_);
    for (const auto &[key, stats] : loaded)
        entries_[key] = stats;
    return true;
}

bool
SimCache::save(const std::string &path) const
{
    std::vector<std::pair<std::uint64_t, SimStats>> snapshot;
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        snapshot.assign(entries_.begin(), entries_.end());
    }

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    const std::uint32_t version = kFormatVersion;
    const std::uint32_t stats_bytes = sizeof(SimStats);
    const std::uint64_t count = snapshot.size();
    out.write(kMagic, sizeof kMagic);
    out.write(reinterpret_cast<const char *>(&version), sizeof version);
    out.write(reinterpret_cast<const char *>(&stats_bytes),
              sizeof stats_bytes);
    out.write(reinterpret_cast<const char *>(&count), sizeof count);
    Fnv1a check;
    for (const auto &[key, stats] : snapshot) {
        out.write(reinterpret_cast<const char *>(&key), sizeof key);
        out.write(reinterpret_cast<const char *>(&stats), sizeof stats);
        check.u64(key);
        check.bytes(&stats, sizeof stats);
    }
    const std::uint64_t checksum = check.value();
    out.write(reinterpret_cast<const char *>(&checksum),
              sizeof checksum);
    return static_cast<bool>(out);
}

void
SimCache::persistTo(const std::string &path)
{
    load(path); // cold start on missing/corrupt is fine
    static std::once_flag registered;
    std::call_once(registered, [] { std::atexit(saveAtExit); });
    std::unique_lock<std::shared_mutex> lock(mutex_);
    persistPath_ = path;
}

void
SimCache::saveIfPersisting() const
{
    std::string path;
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        path = persistPath_;
    }
    if (!path.empty() && !save(path))
        yac_warn("sim-cache: failed to save ", path);
}

SimStats
simulateBenchmarkCached(const BenchmarkProfile &profile,
                        const SimConfig &config)
{
    SimCache &cache = SimCache::instance();
    if (!cache.enabled())
        return simulateBenchmark(profile, config);

    trace::Metrics &metrics = trace::Metrics::instance();
    const std::uint64_t key = SimCache::key(profile, config);
    SimStats stats;
    if (cache.lookup(key, &stats)) {
        metrics.counter("sim_cache_hits").add(1);
        return stats;
    }
    stats = simulateBenchmark(profile, config);
    cache.insert(key, stats);
    metrics.counter("sim_cache_misses").add(1);
    return stats;
}

} // namespace yac
