/**
 * @file
 * High-level simulation driver: one call runs a benchmark profile on
 * a cache/core configuration (warmup + measurement) and returns the
 * statistics, exactly the experiment unit behind Table 6 and
 * Figures 9/10.
 */

#ifndef YAC_SIM_SIMULATION_HH
#define YAC_SIM_SIMULATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/memory_hierarchy.hh"
#include "sim/core_params.hh"
#include "sim/sim_stats.hh"
#include "workload/profile.hh"

namespace yac
{

/** Everything one simulation run needs. */
struct SimConfig
{
    CoreParams core;
    HierarchyParams hierarchy = HierarchyParams::baseline();
    std::uint64_t warmupInsts = 50'000;
    std::uint64_t measureInsts = 200'000;
    std::uint64_t seed = 1;
    std::string label = "base";
};

/** Run one benchmark on one configuration. */
SimStats simulateBenchmark(const BenchmarkProfile &profile,
                           const SimConfig &config);

/**
 * Relative CPI degradation of @p config versus @p baseline on one
 * benchmark: (CPI - CPI_base) / CPI_base. Both runs consume the same
 * deterministic trace, so the difference is noise-free.
 */
double cpiDegradation(const BenchmarkProfile &profile,
                      const SimConfig &baseline, const SimConfig &config);

/** Per-benchmark degradations over a suite; order follows @p suite. */
std::vector<double>
suiteDegradations(const std::vector<BenchmarkProfile> &suite,
                  const SimConfig &baseline, const SimConfig &config);

/** Arithmetic mean of a vector; NaN for an empty input. */
double meanOf(const std::vector<double> &values);

} // namespace yac

#endif // YAC_SIM_SIMULATION_HH
