#include "sim/inorder_ref.hh"

#include <algorithm>

#include "util/logging.hh"
#include "workload/trace_generator.hh"

namespace yac
{

namespace
{

/** Fetch granularity: one L1I block per group of instructions. */
constexpr std::uint64_t kFetchBlockBytes = 64;

} // namespace

InOrderRefCore::InOrderRefCore(const CoreParams &params,
                               MemoryHierarchy &hierarchy,
                               TraceSource &trace)
    : params_(params), hierarchy_(hierarchy), trace_(trace),
      regReady_(static_cast<std::size_t>(2 * kNumLogicalRegs), 0)
{
}

void
InOrderRefCore::run(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        const TraceInst inst = trace_.next();

        // Fetch: serialize an instruction-cache access per block.
        const std::uint64_t block = inst.pc / kFetchBlockBytes;
        if (block != currentFetchBlock_) {
            const int lat = hierarchy_.instFetch(inst.pc);
            if (lat > 1)
                now_ += static_cast<std::uint64_t>(lat - 1);
            currentFetchBlock_ = block;
        }

        // Issue: block until both sources are ready (stall-on-issue,
        // strictly more conservative than stall-on-use).
        std::uint64_t start = now_;
        if (inst.src1 != kNoReg)
            start = std::max(start,
                             regReady_[static_cast<std::size_t>(inst.src1)]);
        if (inst.src2 != kNoReg)
            start = std::max(start,
                             regReady_[static_cast<std::size_t>(inst.src2)]);

        // Execute: loads pay the full hierarchy latency; stores retire
        // through an ideal store buffer but still update cache state.
        std::uint64_t complete = start;
        if (inst.isLoad()) {
            const MemAccessOutcome out =
                hierarchy_.dataAccess(inst.addr, false);
            complete = start + static_cast<std::uint64_t>(
                                   std::max(1, out.latency));
        } else if (inst.isStore()) {
            (void)hierarchy_.dataAccess(inst.addr, true);
            complete = start + 1;
        } else {
            complete = start + static_cast<std::uint64_t>(
                                   std::max(1, opLatency(inst.op)));
        }

        if (inst.dst != kNoReg)
            regReady_[static_cast<std::size_t>(inst.dst)] = complete;

        // One instruction per cycle leaves the scalar pipe; a
        // mispredicted branch additionally drains and redirects.
        now_ = start + 1;
        if (inst.isBranch() && inst.mispredicted)
            now_ = complete +
                static_cast<std::uint64_t>(params_.redirectPenalty);

        ++committed_;
    }
}

void
InOrderRefCore::beginMeasurement()
{
    windowStartCycle_ = now_;
    windowStartInsts_ = committed_;
}

double
inOrderReferenceCpi(const BenchmarkProfile &profile, const CoreParams &core,
                    const HierarchyParams &hierarchy, std::uint64_t seed,
                    std::uint64_t warmup_insts, std::uint64_t measure_insts)
{
    yac_assert(measure_insts > 0, "nothing to measure");
    MemoryHierarchy mem(hierarchy);
    TraceGenerator trace(profile, seed);
    InOrderRefCore ref(core, mem, trace);
    if (warmup_insts > 0)
        ref.run(warmup_insts);
    ref.beginMeasurement();
    ref.run(measure_insts);
    return ref.cpi();
}

} // namespace yac
