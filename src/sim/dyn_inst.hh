/**
 * @file
 * The in-flight instruction record of the out-of-order core model.
 */

#ifndef YAC_SIM_DYN_INST_HH
#define YAC_SIM_DYN_INST_HH

#include <cstdint>

#include "workload/instruction.hh"

namespace yac
{

/** Lifecycle of an in-flight instruction. */
enum class InstState : std::uint8_t
{
    WaitIQ,    //!< in the issue queue, not (or no longer) scheduled
    Scheduled, //!< selected; traversing schedule-to-execute stages
    Executing, //!< occupying a functional unit / cache port
    Done,      //!< result produced, waiting to commit
    Committed, //!< retired
};

/** No producer sentinel. */
constexpr std::int64_t kNoProducer = -1;

/** One in-flight instruction. */
struct DynInst
{
    TraceInst trace;
    std::uint64_t seq = 0;
    InstState state = InstState::WaitIQ;

    /** Producing instructions of each source (kNoProducer if the
     *  value was already architectural at rename). */
    std::int64_t prodSeq[2] = {kNoProducer, kNoProducer};

    /** Earliest cycle the scheduler may select this instruction
     *  (kept monotonically current as producers resolve). */
    std::uint64_t earliestSched = 0;

    std::uint64_t dispatchCycle = 0;
    std::uint64_t schedCycle = 0;

    /**
     * Best current estimate of the cycle at which this instruction's
     * result is available to a consumer *entering execute* (bypass
     * network contract). For loads this is speculative (hit
     * assumption) until the cache access resolves.
     */
    std::uint64_t availCycle = 0;

    /** availCycle is final (cache access resolved / FU started). */
    bool availKnown = false;

    int replays = 0;          //!< selective-replay count
    bool bufferStalled = false; //!< ever waited in a load-bypass buffer
    bool l1Miss = false;      //!< load that missed in the L1

    bool
    producesValue() const
    {
        return trace.dst != kNoReg;
    }
};

} // namespace yac

#endif // YAC_SIM_DYN_INST_HH
