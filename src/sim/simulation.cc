#include "sim/simulation.hh"

#include <limits>

#include "sim/ooo_core.hh"
#include "trace/metrics.hh"
#include "util/logging.hh"
#include "workload/trace_generator.hh"

namespace yac
{

SimStats
simulateBenchmark(const BenchmarkProfile &profile, const SimConfig &config)
{
    yac_assert(config.measureInsts > 0, "nothing to measure");
    trace::Span span("sim.run", "sim");
    span.arg("benchmark", profile.name).arg("config", config.label);
    trace::Metrics &metrics = trace::Metrics::instance();
    trace::ScopedPhase timing(metrics.phase("sim"));
    metrics.counter("sim_runs").add(1);
    metrics.counter("sim_insts").add(config.warmupInsts +
                                     config.measureInsts);

    MemoryHierarchy hierarchy(config.hierarchy);
    TraceGenerator trace(profile, config.seed);
    OooCore core(config.core, hierarchy, trace);
    if (config.warmupInsts > 0)
        core.run(config.warmupInsts);
    core.beginMeasurement();
    core.run(config.measureInsts);
    return core.stats();
}

double
cpiDegradation(const BenchmarkProfile &profile, const SimConfig &baseline,
               const SimConfig &config)
{
    const SimStats base = simulateBenchmark(profile, baseline);
    const SimStats with = simulateBenchmark(profile, config);
    yac_assert(base.cpi() > 0.0, "baseline CPI is zero");
    return (with.cpi() - base.cpi()) / base.cpi();
}

std::vector<double>
suiteDegradations(const std::vector<BenchmarkProfile> &suite,
                  const SimConfig &baseline, const SimConfig &config)
{
    std::vector<double> out;
    out.reserve(suite.size());
    for (const BenchmarkProfile &p : suite)
        out.push_back(cpiDegradation(p, baseline, config));
    return out;
}

double
meanOf(const std::vector<double> &values)
{
    if (values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace yac
