/**
 * @file
 * Scalar in-order reference core: the independent timing oracle the
 * property tests differentially check the out-of-order model against.
 *
 * The model is deliberately simple and conservatively slow -- a
 * one-wide, stall-on-use, in-order pipeline sharing the trace format
 * and memory hierarchy of OooCore but none of its machinery (no issue
 * queue, no speculative wakeup, no replay, no ports). Because the
 * machine it models is strictly less capable than the paper's 4-wide
 * out-of-order core, its CPI on any trace bounds the OooCore's CPI
 * from above; the property suite asserts that bounded-ratio invariant
 * across randomized benchmark profiles (see docs/TESTING.md).
 */

#ifndef YAC_SIM_INORDER_REF_HH
#define YAC_SIM_INORDER_REF_HH

#include <cstdint>
#include <vector>

#include "cache/memory_hierarchy.hh"
#include "sim/core_params.hh"
#include "workload/instruction.hh"
#include "workload/profile.hh"

namespace yac
{

/** One-wide in-order reference pipeline. */
class InOrderRefCore
{
  public:
    /**
     * @param params Core configuration (only the latency-relevant
     *        fields are used: schedToExec, redirectPenalty).
     * @param hierarchy Memory hierarchy (not owned).
     * @param trace Instruction source (not owned).
     */
    InOrderRefCore(const CoreParams &params, MemoryHierarchy &hierarchy,
                   TraceSource &trace);

    /** Run @p n further instructions. */
    void run(std::uint64_t n);

    /** Reset the measurement window (state stays warm). */
    void beginMeasurement();

    /** Committed instructions in the measurement window. */
    std::uint64_t instructions() const
    {
        return committed_ - windowStartInsts_;
    }

    /** Cycles elapsed in the measurement window. */
    std::uint64_t cycles() const { return now_ - windowStartCycle_; }

    /** Cycles per instruction of the measurement window. */
    double cpi() const
    {
        return instructions() == 0
            ? 0.0
            : static_cast<double>(cycles()) /
              static_cast<double>(instructions());
    }

  private:
    CoreParams params_;
    MemoryHierarchy &hierarchy_;
    TraceSource &trace_;

    /** Ready cycle of every logical register. */
    std::vector<std::uint64_t> regReady_;

    std::uint64_t now_ = 0;
    std::uint64_t committed_ = 0;
    std::uint64_t currentFetchBlock_ = ~std::uint64_t{0};

    std::uint64_t windowStartCycle_ = 0;
    std::uint64_t windowStartInsts_ = 0;
};

/**
 * Reference CPI of a benchmark profile on a hierarchy/core
 * configuration: same warmup/measure protocol as simulateBenchmark,
 * same deterministic trace, independent timing model.
 */
double inOrderReferenceCpi(const BenchmarkProfile &profile,
                           const CoreParams &core,
                           const HierarchyParams &hierarchy,
                           std::uint64_t seed,
                           std::uint64_t warmup_insts,
                           std::uint64_t measure_insts);

} // namespace yac

#endif // YAC_SIM_INORDER_REF_HH
