/**
 * @file
 * Statistics reported by one simulation run.
 */

#ifndef YAC_SIM_SIM_STATS_HH
#define YAC_SIM_SIM_STATS_HH

#include <cstdint>

#include "cache/set_assoc_cache.hh"

namespace yac
{

/** Counters over the measured instruction window. */
struct SimStats
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;

    std::uint64_t loadBypassStalls = 0; //!< cycles spent in buffers
    std::uint64_t replays = 0;          //!< selective replays
    std::uint64_t slowWayLoads = 0;     //!< loads served by a 5-cycle way

    CacheStats l1d;
    CacheStats l1i;
    CacheStats l2;

    double iqOccupancySum = 0.0;
    double robOccupancySum = 0.0;

    double cpi() const
    {
        return instructions == 0
            ? 0.0
            : static_cast<double>(cycles) /
              static_cast<double>(instructions);
    }

    double ipc() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(instructions) /
              static_cast<double>(cycles);
    }

    double avgIqOccupancy() const
    {
        return cycles == 0 ? 0.0 : iqOccupancySum /
            static_cast<double>(cycles);
    }

    double avgRobOccupancy() const
    {
        return cycles == 0 ? 0.0 : robOccupancySum /
            static_cast<double>(cycles);
    }
};

} // namespace yac

#endif // YAC_SIM_SIM_STATS_HH
