/**
 * @file
 * Trace-driven out-of-order core model -- the SimpleScalar
 * `sim-outorder` stand-in, with the modifications the paper made:
 * a realistically sized issue queue, speculative scheduling of load
 * dependants with selective replay, cache-port contention, and the
 * VACA load-bypass buffers that let a dependant stall at the
 * functional-unit input when its load takes an extra cycle.
 *
 * Timing contract: an instruction selected (scheduled) at cycle s
 * enters execute at s + schedToExec. A consumer entering execute at
 * cycle e can bypass a producer's value iff e >= A(producer), where
 * A = execStart + latency (for loads, execStart + cache latency).
 * Dependants of a load are woken assuming the base hit latency; if
 * the access resolves one cycle slower (a 5-cycle VACA way), an
 * already-scheduled dependant arriving one cycle early waits in the
 * load-bypass buffer; if it resolves slower than the buffers can
 * absorb (an L1 miss), the dependant is selectively replayed.
 */

#ifndef YAC_SIM_OOO_CORE_HH
#define YAC_SIM_OOO_CORE_HH

#include <cstdint>
#include <vector>

#include "cache/memory_hierarchy.hh"
#include "sim/core_params.hh"
#include "sim/dyn_inst.hh"
#include "sim/sim_stats.hh"
#include "workload/instruction.hh"

namespace yac
{

/** The cycle-level core model. */
class OooCore
{
  public:
    /**
     * @param params Core configuration.
     * @param hierarchy Memory hierarchy (not owned).
     * @param trace Instruction source (not owned).
     */
    OooCore(const CoreParams &params, MemoryHierarchy &hierarchy,
            TraceSource &trace);

    /** Simulate until @p n further instructions have committed. */
    void run(std::uint64_t n);

    /** Reset the measurement window (keeps microarchitectural and
     *  cache state warm). */
    void beginMeasurement();

    /** Statistics of the current measurement window. */
    SimStats stats() const;

    /** Total committed instructions since construction. */
    std::uint64_t committedTotal() const { return committedTotal_; }

    /** Current cycle. */
    std::uint64_t now() const { return now_; }

  private:
    enum class EventKind : std::uint8_t { ExecEntry, Complete };

    struct Event
    {
        EventKind kind;
        std::uint64_t seq;
    };

    static constexpr std::size_t kWheelSize = 2048;

    DynInst &inst(std::uint64_t seq);
    const DynInst &inst(std::uint64_t seq) const;

    /** Enqueue an event @p delta cycles in the future (delta >= 1
     *  unless called during event processing for the same cycle). */
    void schedule(EventKind kind, std::uint64_t seq,
                  std::uint64_t delta);

    /**
     * Availability time of a source operand, or one of the two
     * sentinels: kAvailNow (architectural / committed) and
     * kAvailUnknown (producer not scheduled).
     */
    std::uint64_t sourceAvail(std::int64_t prod_seq) const;

    void processEvents();
    void handleExecEntry(DynInst &di);
    void startExecution(DynInst &di);
    void commit();
    void scheduleReady();
    void dispatch();

    static constexpr std::uint64_t kAvailNow = 0;
    static constexpr std::uint64_t kAvailUnknown = ~std::uint64_t{0};

    CoreParams params_;
    MemoryHierarchy &hierarchy_;
    TraceSource &trace_;

    std::vector<DynInst> rob_;
    std::uint64_t headSeq_ = 0; //!< oldest in-flight seq
    std::uint64_t tailSeq_ = 0; //!< next seq to allocate
    int iqCount_ = 0;

    /** Last in-flight producer of each logical register. */
    std::vector<std::int64_t> renameTable_;

    std::vector<std::vector<Event>> wheel_;
    /** Drain scratch for processEvents(); reused every cycle so the
     *  swap-out of a wheel slot never allocates in steady state. */
    std::vector<Event> eventScratch_;
    std::uint64_t now_ = 0;

    // Per-cycle functional-unit port usage (reset each cycle).
    int intPortsUsed_ = 0;
    int fpPortsUsed_ = 0;
    int memPortsUsed_ = 0;

    std::uint64_t fetchBlockedUntil_ = 0;
    bool waitingForBranch_ = false; //!< mispredict pending resolution
    std::uint64_t currentFetchBlock_ = ~std::uint64_t{0};

    std::uint64_t committedTotal_ = 0;

    // Measurement window.
    SimStats window_;
    std::uint64_t windowStartCycle_ = 0;
    std::uint64_t windowStartInsts_ = 0;
};

} // namespace yac

#endif // YAC_SIM_OOO_CORE_HH
