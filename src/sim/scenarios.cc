#include "sim/scenarios.hh"

#include <cstdio>

#include "util/logging.hh"

namespace yac
{

SimConfig
baselineScenario()
{
    SimConfig cfg;
    cfg.label = "base(4-0-0)";
    return cfg;
}

SimConfig
yapdScenario(int disabled_ways)
{
    yac_assert(disabled_ways >= 1 && disabled_ways <= 3,
               "YAPD can disable 1..3 ways here");
    SimConfig cfg;
    std::uint32_t mask = 0xF;
    for (int i = 0; i < disabled_ways; ++i)
        mask &= ~(1u << (3 - i)); // disable the highest-index ways
    cfg.hierarchy.l1d.wayMask = mask;
    cfg.label = "YAPD(-" + std::to_string(disabled_ways) + "w)";
    return cfg;
}

SimConfig
hyapdScenario(std::size_t disabled_region)
{
    SimConfig cfg;
    cfg.hierarchy.l1d.horizontalMode = true;
    cfg.hierarchy.l1d.numHRegions = cfg.hierarchy.l1d.numWays;
    cfg.hierarchy.l1d.disabledHRegion = disabled_region;
    cfg.label = "H-YAPD(region " + std::to_string(disabled_region) + ")";
    return cfg;
}

SimConfig
vacaScenario(int ways5)
{
    yac_assert(ways5 >= 0 && ways5 <= 4, "0..4 slow ways");
    SimConfig cfg;
    cfg.hierarchy.l1d.wayLatency.assign(4, 4);
    for (int i = 0; i < ways5; ++i)
        cfg.hierarchy.l1d.wayLatency[3 - i] = 5;
    cfg.core.loadBypassDepth = 1;
    cfg.core.assumedLoadLatency = 4;
    char label[32];
    std::snprintf(label, sizeof(label), "VACA(%d-%d-0)", 4 - ways5,
                  ways5);
    cfg.label = label;
    return cfg;
}

SimConfig
hybridOffScenario(int ways5)
{
    yac_assert(ways5 >= 0 && ways5 <= 3,
               "0..3 slow ways among the 3 survivors");
    SimConfig cfg;
    cfg.hierarchy.l1d.wayMask = 0x7; // way 3 powered down
    cfg.hierarchy.l1d.wayLatency.assign(4, 4);
    for (int i = 0; i < ways5; ++i)
        cfg.hierarchy.l1d.wayLatency[2 - i] = 5;
    cfg.core.loadBypassDepth = 1;
    cfg.core.assumedLoadLatency = 4;
    char label[40];
    std::snprintf(label, sizeof(label), "Hybrid(%d-%d,+off)",
                  3 - ways5, ways5);
    cfg.label = label;
    return cfg;
}

SimConfig
binningScenario(int cycles)
{
    yac_assert(cycles >= 4 && cycles <= 8, "binning at 4..8 cycles");
    SimConfig cfg;
    cfg.hierarchy.l1d.hitLatency = 4;
    cfg.hierarchy.l1d.wayLatency.assign(4, cycles);
    // The scheduler knows the binned latency: no buffers involved.
    cfg.core.assumedLoadLatency = cycles;
    cfg.core.loadBypassDepth = 0;
    cfg.label = "Bin@" + std::to_string(cycles) + "cy";
    return cfg;
}

SimConfig
table6Scenario(const std::string &signature, const std::string &scheme)
{
    int n4 = 0, n5 = 0, n6 = 0;
    if (std::sscanf(signature.c_str(), "%d-%d-%d", &n4, &n5, &n6) != 3 ||
        n4 + n5 + n6 != 4) {
        yac_fatal("bad Table 6 signature: ", signature);
    }

    if (scheme == "YAPD" || scheme == "H-YAPD") {
        // YAPD needs all enabled ways at base latency and can only
        // power down a single way (or none, for the pure leakage
        // configuration 4-0-0).
        if (n5 + n6 > 1)
            yac_fatal("YAPD cannot run ", signature);
        return yapdScenario(1);
    }
    if (scheme == "VACA") {
        if (n6 > 0)
            yac_fatal("VACA cannot run ", signature);
        if (n5 == 0) {
            // 4-0-0 is a leakage loss; VACA cannot power down.
            yac_fatal("VACA cannot save the leakage-limited 4-0-0");
        }
        return vacaScenario(n5);
    }
    if (scheme == "Hybrid") {
        if (n6 > 1)
            yac_fatal("Hybrid cannot run ", signature);
        if (n6 == 1)
            return hybridOffScenario(n5);
        if (n5 == 0)
            return yapdScenario(1); // leakage-only: power down one way
        return vacaScenario(n5);    // keep ways on as long as possible
    }
    yac_fatal("unknown scheme: ", scheme);
}

} // namespace yac
