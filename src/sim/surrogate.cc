#include "sim/surrogate.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

#include "sim/scenarios.hh"
#include "sim/sim_cache.hh"
#include "trace/metrics.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace yac
{

namespace
{

constexpr char kMagic[8] = {'Y', 'A', 'C', 'S', 'U', 'R', '0', '1'};
constexpr std::uint32_t kTableFormatVersion = 1;

// Sanity ceilings: a corrupt length field must be rejected before it
// turns into an allocation, not after.
constexpr std::uint64_t kMaxModels = 1u << 20;
constexpr std::uint64_t kMaxNameLen = 1u << 12;

/** FNV-1a over the canonical byte stream (same as SimCache's). */
class Fnv1a
{
  public:
    void bytes(const void *data, std::size_t n)
    {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ull;
        }
    }

    void u64(std::uint64_t v) { bytes(&v, sizeof v); }

    void f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/** Capacity fraction of @p cache lost to masks / H-region disable. */
double
capacityLostFrac(const CacheParams &cache)
{
    const double ways = static_cast<double>(cache.numWays);
    double enabled =
        static_cast<double>(cache.enabledWays()) / std::max(1.0, ways);
    if (cache.horizontalMode &&
        cache.disabledHRegion != CacheParams::kNoRegion) {
        const double regions =
            std::max<std::size_t>(1, cache.numHRegions);
        enabled *= (regions - 1.0) / regions;
    }
    return 1.0 - enabled;
}

/** Solve (A + ridge I) c = b for a kSurrogateFeatureCount system by
 *  Gaussian elimination with partial pivoting. */
std::array<double, kSurrogateFeatureCount>
solveNormal(std::array<std::array<double, kSurrogateFeatureCount>,
                       kSurrogateFeatureCount>
                a,
            std::array<double, kSurrogateFeatureCount> b, double ridge)
{
    constexpr std::size_t n = kSurrogateFeatureCount;
    for (std::size_t i = 0; i < n; ++i)
        a[i][i] += ridge;
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col]))
                pivot = row;
        }
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        const double diag = a[col][col];
        yac_assert(std::fabs(diag) > 0.0,
                   "surrogate fit: singular normal equations");
        for (std::size_t row = col + 1; row < n; ++row) {
            const double f = a[row][col] / diag;
            if (f == 0.0)
                continue;
            for (std::size_t k = col; k < n; ++k)
                a[row][k] -= f * a[col][k];
            b[row] -= f * b[col];
        }
    }
    std::array<double, n> c{};
    for (std::size_t row = n; row-- > 0;) {
        double sum = b[row];
        for (std::size_t k = row + 1; k < n; ++k)
            sum -= a[row][k] * c[k];
        c[row] = sum / a[row][row];
    }
    return c;
}

std::vector<BenchmarkProfile>
resolveSuite(const SurrogateTable &table,
             const std::vector<BenchmarkProfile> &universe)
{
    if (table.models.empty())
        return universe;
    std::vector<BenchmarkProfile> out;
    out.reserve(table.models.size());
    for (const SurrogateModel &m : table.models) {
        const BenchmarkProfile *found = nullptr;
        for (const BenchmarkProfile &p : universe) {
            if (p.name == m.benchmark) {
                found = &p;
                break;
            }
        }
        if (found == nullptr)
            yac_fatal("surrogate: no profile named '", m.benchmark,
                      "' for the table's model");
        out.push_back(*found);
    }
    return out;
}

} // namespace

const char *
surrogateFeatureName(std::size_t i)
{
    static const char *const names[kSurrogateFeatureCount] = {
        "intercept",      "l1d_lost",     "l1i_lost",
        "l2_lost",        "l1d_plus1",    "l1d_plus2",
        "bypass_stall",   "replay",       "serialization",
        "lost_x_slow",
    };
    yac_assert(i < kSurrogateFeatureCount, "feature index ", i);
    return names[i];
}

SurrogateFeatures
surrogateFeatures(const SimConfig &config, const SimConfig &baseline)
{
    SurrogateFeatures f{};
    f[0] = 1.0;
    const CacheParams &l1d = config.hierarchy.l1d;
    f[1] = capacityLostFrac(l1d);
    f[2] = capacityLostFrac(config.hierarchy.l1i);
    f[3] = capacityLostFrac(config.hierarchy.l2);

    const int base = baseline.hierarchy.l1d.hitLatency;
    const int assumed = config.core.assumedLoadLatency;
    const int depth = config.core.loadBypassDepth;
    double enabled = 0, plus1 = 0, plus2 = 0, stall = 0, replay = 0;
    for (std::size_t w = 0; w < l1d.numWays; ++w) {
        if ((l1d.wayMask & (1u << w)) == 0)
            continue;
        enabled += 1.0;
        const int lat = l1d.latencyOfWay(w);
        if (lat == base + 1)
            plus1 += 1.0;
        else if (lat >= base + 2)
            plus2 += 1.0;
        if (lat > assumed) {
            if (lat <= assumed + depth)
                stall += 1.0;
            else
                replay += 1.0;
        }
    }
    if (enabled > 0.0) {
        f[4] = plus1 / enabled;
        f[5] = plus2 / enabled;
        f[6] = stall / enabled;
        f[7] = replay / enabled;
    }
    const double base_assumed =
        static_cast<double>(baseline.core.assumedLoadLatency);
    f[8] = (static_cast<double>(assumed) - base_assumed) /
        std::max(1.0, base_assumed);
    f[9] = f[1] * (f[4] + f[5]);
    return f;
}

double
SurrogateModel::predict(const SurrogateFeatures &f) const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < kSurrogateFeatureCount; ++i)
        sum += coef[i] * f[i];
    return sum;
}

const char *
SurrogateTable::loadStatusName(LoadStatus status)
{
    switch (status) {
      case LoadStatus::Ok:
        return "ok";
      case LoadStatus::MissingFile:
        return "missing file";
      case LoadStatus::BadMagic:
        return "bad magic";
      case LoadStatus::BadVersion:
        return "format-version mismatch";
      case LoadStatus::BadLayout:
        return "feature-count/ABI mismatch";
      case LoadStatus::Truncated:
        return "truncated";
      case LoadStatus::ChecksumMismatch:
        return "checksum mismatch";
    }
    return "unknown";
}

namespace
{

/** Payload writer that feeds the trailing checksum as it goes. */
class TableWriter
{
  public:
    explicit TableWriter(std::ofstream &out) : out_(out) {}

    void u64(std::uint64_t v)
    {
        out_.write(reinterpret_cast<const char *>(&v), sizeof v);
        check_.u64(v);
    }

    void f64(double v)
    {
        out_.write(reinterpret_cast<const char *>(&v), sizeof v);
        check_.f64(v);
    }

    void str(const std::string &s)
    {
        u64(s.size());
        out_.write(s.data(),
                   static_cast<std::streamsize>(s.size()));
        check_.bytes(s.data(), s.size());
    }

    std::uint64_t checksum() const { return check_.value(); }

  private:
    std::ofstream &out_;
    Fnv1a check_;
};

/** Payload reader mirroring TableWriter; ok() goes false on EOF. */
class TableReader
{
  public:
    explicit TableReader(std::ifstream &in) : in_(in) {}

    bool u64(std::uint64_t *v)
    {
        in_.read(reinterpret_cast<char *>(v), sizeof *v);
        if (!in_)
            return false;
        check_.u64(*v);
        return true;
    }

    bool f64(double *v)
    {
        in_.read(reinterpret_cast<char *>(v), sizeof *v);
        if (!in_)
            return false;
        check_.f64(*v);
        return true;
    }

    bool str(std::string *s)
    {
        std::uint64_t len = 0;
        if (!u64(&len) || len > kMaxNameLen)
            return false;
        s->resize(static_cast<std::size_t>(len));
        in_.read(s->data(), static_cast<std::streamsize>(len));
        if (!in_)
            return false;
        check_.bytes(s->data(), s->size());
        return true;
    }

    std::uint64_t checksum() const { return check_.value(); }

  private:
    std::ifstream &in_;
    Fnv1a check_;
};

} // namespace

bool
SurrogateTable::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    const std::uint32_t version = kTableFormatVersion;
    const std::uint32_t features = kSurrogateFeatureCount;
    out.write(kMagic, sizeof kMagic);
    out.write(reinterpret_cast<const char *>(&version), sizeof version);
    out.write(reinterpret_cast<const char *>(&features),
              sizeof features);

    TableWriter w(out);
    w.u64(warmupInsts);
    w.u64(measureInsts);
    w.u64(simSeed);
    w.f64(envelopeSlack);
    for (double v : featMin)
        w.f64(v);
    for (double v : featMax)
        w.f64(v);
    w.u64(models.size());
    for (const SurrogateModel &m : models) {
        w.str(m.benchmark);
        w.f64(m.baselineCpi);
        w.f64(m.missPressure);
        w.f64(m.maxAbsError);
        for (double c : m.coef)
            w.f64(c);
    }
    const std::uint64_t checksum = w.checksum();
    out.write(reinterpret_cast<const char *>(&checksum),
              sizeof checksum);
    return static_cast<bool>(out);
}

SurrogateTable::LoadStatus
SurrogateTable::load(const std::string &path, SurrogateTable *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return LoadStatus::MissingFile;

    char magic[sizeof kMagic];
    in.read(magic, sizeof magic);
    if (!in)
        return LoadStatus::Truncated;
    if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
        return LoadStatus::BadMagic;
    std::uint32_t version = 0;
    in.read(reinterpret_cast<char *>(&version), sizeof version);
    if (!in)
        return LoadStatus::Truncated;
    if (version != kTableFormatVersion)
        return LoadStatus::BadVersion;
    std::uint32_t features = 0;
    in.read(reinterpret_cast<char *>(&features), sizeof features);
    if (!in)
        return LoadStatus::Truncated;
    if (features != kSurrogateFeatureCount)
        return LoadStatus::BadLayout;

    SurrogateTable loaded;
    TableReader r(in);
    if (!r.u64(&loaded.warmupInsts) || !r.u64(&loaded.measureInsts) ||
        !r.u64(&loaded.simSeed) || !r.f64(&loaded.envelopeSlack)) {
        return LoadStatus::Truncated;
    }
    for (double &v : loaded.featMin) {
        if (!r.f64(&v))
            return LoadStatus::Truncated;
    }
    for (double &v : loaded.featMax) {
        if (!r.f64(&v))
            return LoadStatus::Truncated;
    }
    std::uint64_t count = 0;
    if (!r.u64(&count) || count > kMaxModels)
        return LoadStatus::Truncated;
    loaded.models.resize(static_cast<std::size_t>(count));
    for (SurrogateModel &m : loaded.models) {
        if (!r.str(&m.benchmark) || !r.f64(&m.baselineCpi) ||
            !r.f64(&m.missPressure) || !r.f64(&m.maxAbsError)) {
            return LoadStatus::Truncated;
        }
        for (double &c : m.coef) {
            if (!r.f64(&c))
                return LoadStatus::Truncated;
        }
    }
    std::uint64_t checksum = 0;
    in.read(reinterpret_cast<char *>(&checksum), sizeof checksum);
    if (!in)
        return LoadStatus::Truncated;
    if (checksum != r.checksum())
        return LoadStatus::ChecksumMismatch;

    *out = std::move(loaded);
    return LoadStatus::Ok;
}

bool
SurrogateTable::loadOrWarn(const std::string &path, SurrogateTable *out)
{
    const LoadStatus status = load(path, out);
    if (status == LoadStatus::Ok)
        return true;
    yac_warn("surrogate: rejecting ", path, " (",
             loadStatusName(status), ")");
    return false;
}

std::uint64_t
SurrogateTable::contentHash() const
{
    Fnv1a h;
    h.u64(kTableFormatVersion);
    h.u64(kSurrogateFeatureCount);
    h.u64(warmupInsts);
    h.u64(measureInsts);
    h.u64(simSeed);
    h.f64(envelopeSlack);
    for (double v : featMin)
        h.f64(v);
    for (double v : featMax)
        h.f64(v);
    h.u64(models.size());
    for (const SurrogateModel &m : models) {
        h.str(m.benchmark);
        h.f64(m.baselineCpi);
        h.f64(m.missPressure);
        h.f64(m.maxAbsError);
        for (double c : m.coef)
            h.f64(c);
    }
    return h.value();
}

bool
SurrogateTable::inEnvelope(const SurrogateFeatures &f) const
{
    for (std::size_t i = 0; i < kSurrogateFeatureCount; ++i) {
        const double range =
            std::max(featMax[i] - featMin[i], 1e-12);
        const double pad = envelopeSlack * range + 1e-9;
        if (f[i] < featMin[i] - pad || f[i] > featMax[i] + pad)
            return false;
    }
    return true;
}

double
SurrogateTable::predictMean(const SurrogateFeatures &f) const
{
    yac_assert(!models.empty(), "surrogate table has no models");
    double sum = 0.0;
    for (const SurrogateModel &m : models)
        sum += m.predict(f);
    return sum / static_cast<double>(models.size());
}

const SurrogateModel *
SurrogateTable::find(const std::string &benchmark) const
{
    for (const SurrogateModel &m : models) {
        if (m.benchmark == benchmark)
            return &m;
    }
    return nullptr;
}

SimConfig
SurrogateTable::baselineConfig() const
{
    SimConfig cfg = baselineScenario();
    cfg.warmupInsts = warmupInsts;
    cfg.measureInsts = measureInsts;
    cfg.seed = simSeed;
    return cfg;
}

SurrogateTable
fitSurrogateTable(const std::vector<BenchmarkProfile> &suite,
                  const SimConfig &baseline, const SurrogateFitPlan &plan)
{
    yac_assert(!suite.empty(), "surrogate fit: empty suite");
    yac_assert(plan.train.size() > kSurrogateFeatureCount,
               "surrogate fit: need more training configs (",
               plan.train.size(), ") than features (",
               kSurrogateFeatureCount, ")");

    SurrogateTable table;
    table.warmupInsts = baseline.warmupInsts;
    table.measureInsts = baseline.measureInsts;
    table.simSeed = baseline.seed;
    table.envelopeSlack = plan.envelopeSlack;

    // Normalize every swept config to the baseline's windows/seed so
    // degradations are measured against the same reference runs.
    std::vector<SimConfig> all;
    all.reserve(plan.train.size() + plan.holdout.size());
    for (const std::vector<SimConfig> *src :
         {&plan.train, &plan.holdout}) {
        for (SimConfig cfg : *src) {
            cfg.warmupInsts = baseline.warmupInsts;
            cfg.measureInsts = baseline.measureInsts;
            cfg.seed = baseline.seed;
            all.push_back(std::move(cfg));
        }
    }
    const std::size_t num_train = plan.train.size();

    // Feature matrix + envelope (the baseline's all-zero feature
    // vector is folded in so pristine chips always price in-envelope).
    std::vector<SurrogateFeatures> feats;
    feats.reserve(all.size());
    table.featMin.fill(std::numeric_limits<double>::infinity());
    table.featMax.fill(-std::numeric_limits<double>::infinity());
    auto fold = [&table](const SurrogateFeatures &f) {
        for (std::size_t i = 0; i < kSurrogateFeatureCount; ++i) {
            table.featMin[i] = std::min(table.featMin[i], f[i]);
            table.featMax[i] = std::max(table.featMax[i], f[i]);
        }
    };
    fold(surrogateFeatures(baseline, baseline));
    for (const SimConfig &cfg : all) {
        feats.push_back(surrogateFeatures(cfg, baseline));
        fold(feats.back());
    }

    // Exact CPIs for the whole (benchmark x config) grid, plus the
    // per-benchmark baselines, simulated in parallel through the
    // memo cache and folded in index order.
    const std::size_t stride = all.size() + 1; // slot 0 = baseline
    std::vector<double> cpi(suite.size() * stride, 0.0);
    parallel::forEach(cpi.size(), [&](std::size_t idx) {
        const std::size_t b = idx / stride;
        const std::size_t k = idx % stride;
        const SimConfig &cfg = k == 0 ? baseline : all[k - 1];
        cpi[idx] = simulateBenchmarkCached(suite[b], cfg).cpi();
    });

    table.models.reserve(suite.size());
    for (std::size_t b = 0; b < suite.size(); ++b) {
        const double base = cpi[b * stride];
        yac_assert(base > 0.0, "surrogate fit: zero baseline CPI for ",
                   suite[b].name);

        std::array<std::array<double, kSurrogateFeatureCount>,
                   kSurrogateFeatureCount>
            xtx{};
        std::array<double, kSurrogateFeatureCount> xty{};
        for (std::size_t k = 0; k < num_train; ++k) {
            const SurrogateFeatures &x = feats[k];
            const double y = (cpi[b * stride + 1 + k] - base) / base;
            for (std::size_t i = 0; i < kSurrogateFeatureCount; ++i) {
                xty[i] += x[i] * y;
                for (std::size_t j = 0; j < kSurrogateFeatureCount; ++j)
                    xtx[i][j] += x[i] * x[j];
            }
        }

        SurrogateModel model;
        model.benchmark = suite[b].name;
        model.baselineCpi = base;
        model.missPressure = suite[b].expectedL1MissRate();
        model.coef = solveNormal(xtx, xty, plan.ridge);
        for (std::size_t k = 0; k < all.size(); ++k) {
            const double y = (cpi[b * stride + 1 + k] - base) / base;
            const double err = std::fabs(model.predict(feats[k]) - y);
            model.maxAbsError = std::max(model.maxAbsError, err);
        }
        table.models.push_back(std::move(model));
    }
    return table;
}

std::vector<SimConfig>
surrogateTrainingConfigs()
{
    std::vector<SimConfig> out;
    out.push_back(baselineScenario());
    for (int d = 1; d <= 3; ++d)
        out.push_back(yapdScenario(d));
    out.push_back(hyapdScenario(0));
    for (int k = 1; k <= 4; ++k)
        out.push_back(vacaScenario(k));
    for (int k = 0; k <= 3; ++k)
        out.push_back(hybridOffScenario(k));
    for (int c = 5; c <= 7; ++c)
        out.push_back(binningScenario(c));

    // Way-placement permutations: the features are placement-blind,
    // so teaching the fit both extremes keeps the residual honest.
    {
        SimConfig cfg = vacaScenario(1);
        cfg.hierarchy.l1d.wayLatency.assign(4, 4);
        cfg.hierarchy.l1d.wayLatency[0] = 5;
        cfg.label = "VACA(way0 slow)";
        out.push_back(cfg);
    }
    {
        SimConfig cfg = vacaScenario(2);
        cfg.hierarchy.l1d.wayLatency.assign(4, 4);
        cfg.hierarchy.l1d.wayLatency[0] = 5;
        cfg.hierarchy.l1d.wayLatency[2] = 5;
        cfg.label = "VACA(ways 0,2 slow)";
        out.push_back(cfg);
    }
    {
        SimConfig cfg = yapdScenario(1);
        cfg.hierarchy.l1d.wayMask = 0xE; // way 0 instead of way 3
        cfg.label = "YAPD(way0 off)";
        out.push_back(cfg);
    }
    {
        SimConfig cfg = yapdScenario(2);
        cfg.hierarchy.l1d.wayMask = 0x5; // ways 1,3 off
        cfg.label = "YAPD(ways 1,3 off)";
        out.push_back(cfg);
    }
    {
        SimConfig cfg = hybridOffScenario(1);
        cfg.hierarchy.l1d.wayMask = 0xE;
        cfg.hierarchy.l1d.wayLatency.assign(4, 4);
        cfg.hierarchy.l1d.wayLatency[3] = 5;
        cfg.label = "Hybrid(way0 off, way3 slow)";
        out.push_back(cfg);
    }

    // Bypass-less replay variants: slow ways on a conventional core
    // (loadBypassDepth 0, 4-cycle assumption kept).
    for (int k : {1, 2, 4}) {
        SimConfig cfg = vacaScenario(k);
        cfg.core.loadBypassDepth = 0;
        cfg.label = "Replay(" + std::to_string(k) + " slow)";
        out.push_back(cfg);
    }

    // Deep-slow replay: a +2 way the single-entry buffers cannot
    // absorb.
    {
        SimConfig cfg = vacaScenario(1);
        cfg.hierarchy.l1d.wayLatency[3] = 6;
        cfg.label = "Replay(way3 at 6cy)";
        out.push_back(cfg);
    }
    {
        SimConfig cfg = vacaScenario(2);
        cfg.hierarchy.l1d.wayLatency[3] = 6;
        cfg.label = "Replay(6cy+5cy)";
        out.push_back(cfg);
    }
    return out;
}

std::vector<SimConfig>
surrogateHoldoutConfigs(std::uint64_t seed, std::size_t count)
{
    std::vector<SimConfig> out;
    out.reserve(count);
    Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        if (rng.uniform() < 0.15) {
            const int cycles = 5 + static_cast<int>(rng.uniformInt(3));
            SimConfig cfg = binningScenario(cycles);
            cfg.label = "rand-bin#" + std::to_string(i);
            out.push_back(std::move(cfg));
            continue;
        }
        SimConfig cfg;
        const std::size_t disabled = rng.uniformInt(4); // 0..3
        std::uint32_t mask = 0xF;
        while (static_cast<std::size_t>(__builtin_popcount(mask)) >
               4 - disabled) {
            mask &= ~(1u << rng.uniformInt(4));
        }
        cfg.hierarchy.l1d.wayMask = mask;
        cfg.hierarchy.l1d.wayLatency.assign(4, 4);
        for (std::size_t w = 0; w < 4; ++w) {
            if ((mask & (1u << w)) == 0)
                continue;
            const double u = rng.uniform();
            if (u < 0.1)
                cfg.hierarchy.l1d.wayLatency[w] = 6;
            else if (u < 0.5)
                cfg.hierarchy.l1d.wayLatency[w] = 5;
        }
        cfg.core.loadBypassDepth = rng.uniform() < 0.8 ? 1 : 0;
        cfg.core.assumedLoadLatency = 4;
        cfg.label = "rand#" + std::to_string(i);
        out.push_back(std::move(cfg));
    }
    return out;
}

CpiOracle::CpiOracle(CpiMode mode, SurrogateTable table)
    : CpiOracle(mode, std::move(table), spec2000Profiles())
{
}

CpiOracle::CpiOracle(CpiMode mode, SurrogateTable table,
                     std::vector<BenchmarkProfile> suite)
    : mode_(mode), table_(std::move(table))
{
    if (mode_ != CpiMode::Sim) {
        yac_assert(!table_.models.empty(), "cpi=", cpiModeName(mode_),
                   " needs a fitted surrogate table");
    }
    baseline_ = table_.baselineConfig();
    suite_ = resolveSuite(table_, suite);
    yac_assert(!suite_.empty(), "CPI oracle: empty benchmark suite");
    if (mode_ != CpiMode::Surrogate) {
        // Eager baseline CPIs keep meanDegradation() lock-free.
        baselineCpis_.resize(suite_.size(), 0.0);
        parallel::forEach(suite_.size(), [&](std::size_t i) {
            baselineCpis_[i] =
                simulateBenchmarkCached(suite_[i], baseline_).cpi();
        });
    }
}

CpiOracle
CpiOracle::fromSpec(const EngineSpec &spec, std::uint64_t expect_hash)
{
    if (spec.cpi == CpiMode::Sim)
        return CpiOracle(CpiMode::Sim);
    if (spec.surrogate.empty())
        yac_fatal("cpi=", cpiModeName(spec.cpi),
                  " needs a surrogate table (--surrogate=TABLE)");
    SurrogateTable table;
    if (!SurrogateTable::loadOrWarn(spec.surrogate, &table))
        yac_fatal("surrogate: cannot load ", spec.surrogate);
    if (expect_hash != 0 && table.contentHash() != expect_hash) {
        yac_fatal("surrogate: ", spec.surrogate,
                  " content-hash mismatch (expected ", expect_hash,
                  ", got ", table.contentHash(), ")");
    }
    return CpiOracle(spec.cpi, std::move(table));
}

double
CpiOracle::meanDegradation(const SimConfig &config) const
{
    // Price against the table's reference runs regardless of what
    // windows the caller left in the config.
    SimConfig cfg = config;
    cfg.warmupInsts = table_.warmupInsts;
    cfg.measureInsts = table_.measureInsts;
    cfg.seed = table_.simSeed;

    // A pristine chip is the baseline: exactly 0 in every mode.
    if (SimCache::key(suite_.front(), cfg) ==
        SimCache::key(suite_.front(), baseline_)) {
        return 0.0;
    }

    trace::Metrics &metrics = trace::Metrics::instance();
    if (mode_ == CpiMode::Sim) {
        metrics.counter("cpi_sim_chips").add(1);
        return exactMean(cfg);
    }
    const SurrogateFeatures f = surrogateFeatures(cfg, baseline_);
    if (mode_ == CpiMode::Auto && !table_.inEnvelope(f)) {
        metrics.counter("cpi_sim_chips").add(1);
        metrics.counter("cpi_auto_fallbacks").add(1);
        return exactMean(cfg);
    }
    metrics.counter("cpi_surrogate_chips").add(1);
    return table_.predictMean(f);
}

double
CpiOracle::exactMean(const SimConfig &config) const
{
    yac_assert(!baselineCpis_.empty(),
               "exact CPI path without baseline CPIs (surrogate-only "
               "oracle)");
    double sum = 0.0;
    for (std::size_t i = 0; i < suite_.size(); ++i) {
        const double cur =
            simulateBenchmarkCached(suite_[i], config).cpi();
        sum += (cur - baselineCpis_[i]) / baselineCpis_[i];
    }
    return sum / static_cast<double>(suite_.size());
}

} // namespace yac
