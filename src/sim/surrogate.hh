/**
 * @file
 * Learned CPI-degradation surrogate: a per-benchmark linear /
 * low-order-interaction model over features derivable from a degraded
 * SimConfig, fitted offline against simulateBenchmark (the reference
 * oracle) by tools/yac_fit_surrogate and serialized as a versioned,
 * checksummed coefficient table with the same reject-don't-trust
 * discipline as SimCache and the worker checkpoints.
 *
 * Why: SimCache only dedupes *exact* (profile, SimConfig) pairs, so a
 * campaign population with diverse degraded configurations pays full
 * pipeline-simulation cost per distinct chip. The surrogate replaces
 * that with one dot product per (benchmark, chip) -- >= 20x per chip
 * on a cold cache (bench/bench_surrogate_cpi.cc) -- while CpiMode::Auto
 * falls back to the exact simulator for any configuration outside the
 * validated feature envelope. See docs/PERFORMANCE.md section 5.
 */

#ifndef YAC_SIM_SURROGATE_HH
#define YAC_SIM_SURROGATE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "variation/engine_spec.hh"
#include "workload/profile.hh"

namespace yac
{

/**
 * The fixed feature vector, all dimensionless, extracted from a
 * degraded SimConfig relative to the fit baseline:
 *
 *   0  intercept (always 1)
 *   1  L1D capacity lost fraction (masked ways / disabled H-region)
 *   2  L1I capacity lost fraction
 *   3  L2 capacity lost fraction
 *   4  fraction of enabled L1D ways at +1 cycle over the base latency
 *   5  fraction of enabled L1D ways at +2 cycles or worse
 *   6  bypass-stall exposure: fraction of enabled L1D ways whose
 *      latency exceeds the scheduler assumption by at most the
 *      load-bypass depth (the VACA stall-at-FU regime)
 *   7  replay exposure: fraction of enabled L1D ways whose latency
 *      exceeds assumption + bypass depth (scheduler replays)
 *   8  scheduler serialization: relative raise of assumedLoadLatency
 *      over the baseline assumption (the binning regime)
 *   9  interaction: capacity lost x slow-way fraction (features
 *      1 x (4 + 5))
 *
 * Per-benchmark coefficients absorb the workload's baseline miss
 * pressure (each model also records profile.expectedL1MissRate() so
 * the table documents the regime it was fitted in).
 */
inline constexpr std::size_t kSurrogateFeatureCount = 10;

using SurrogateFeatures = std::array<double, kSurrogateFeatureCount>;

/** Short stable name of feature @p i (docs, CSV headers). */
const char *surrogateFeatureName(std::size_t i);

/** Extract the feature vector of @p config relative to @p baseline. */
SurrogateFeatures surrogateFeatures(const SimConfig &config,
                                    const SimConfig &baseline);

/** One benchmark's fitted model. */
struct SurrogateModel
{
    std::string benchmark;

    /** Baseline CPI the fit measured (predictions are relative). */
    double baselineCpi = 0.0;

    /** profile.expectedL1MissRate() at fit time; metadata only. */
    double missPressure = 0.0;

    /**
     * The fitted error bound: max |dCPI_pred - dCPI_sim| over every
     * training + held-out configuration the fit evaluated.
     */
    double maxAbsError = 0.0;

    std::array<double, kSurrogateFeatureCount> coef{};

    /** Predicted relative CPI degradation (coef . features). */
    double predict(const SurrogateFeatures &f) const;
};

/**
 * The serialized coefficient table: fit metadata (the simulation
 * windows the coefficients were trained against), the validated
 * feature envelope, and one model per benchmark.
 */
struct SurrogateTable
{
    /** Simulation windows / trace seed of the fit's exact runs; the
     *  oracle reruns the simulator with exactly these on fallback. */
    std::uint64_t warmupInsts = 30'000;
    std::uint64_t measureInsts = 120'000;
    std::uint64_t simSeed = 1;

    /** Fractional widening applied per feature when checking the
     *  envelope (a config this far outside the fitted range still
     *  counts as covered). */
    double envelopeSlack = 0.05;

    /** Per-feature min/max over every configuration the fit saw. */
    std::array<double, kSurrogateFeatureCount> featMin{};
    std::array<double, kSurrogateFeatureCount> featMax{};

    std::vector<SurrogateModel> models;

    /** Result of load(); every non-Ok status leaves *out untouched. */
    enum class LoadStatus
    {
        Ok,
        MissingFile,
        BadMagic,
        BadVersion,
        BadLayout, //!< feature-count / ABI drift
        Truncated,
        ChecksumMismatch,
    };

    static const char *loadStatusName(LoadStatus status);

    /** Write the table to @p path. Returns false on I/O failure. */
    bool save(const std::string &path) const;

    /**
     * Read a table from @p path. Reject-don't-trust: any header,
     * size, or checksum problem returns the specific status and
     * leaves @p out untouched.
     */
    static LoadStatus load(const std::string &path, SurrogateTable *out);

    /** load() that yac_warns and returns false on any rejection. */
    static bool loadOrWarn(const std::string &path, SurrogateTable *out);

    /**
     * Canonical FNV-1a hash over every semantic field (format
     * version, fit windows, envelope, every coefficient). Shard specs
     * carry it so a merge of shards priced by different tables can
     * never look mergeable.
     */
    std::uint64_t contentHash() const;

    /** True when @p f lies inside the fitted per-feature envelope
     *  widened by envelopeSlack. */
    bool inEnvelope(const SurrogateFeatures &f) const;

    /** Mean predicted relative degradation over all models. */
    double predictMean(const SurrogateFeatures &f) const;

    /** Model for @p benchmark, or nullptr. */
    const SurrogateModel *find(const std::string &benchmark) const;

    /** The fit's baseline: baselineScenario() with this table's
     *  simulation windows and trace seed applied. */
    SimConfig baselineConfig() const;
};

/** Fit inputs beyond the suite: the degradation-space sweep. */
struct SurrogateFitPlan
{
    /** Configurations the coefficients are fitted on. */
    std::vector<SimConfig> train;

    /** Held-out configurations: not fitted, but folded into each
     *  model's maxAbsError and into the envelope. */
    std::vector<SimConfig> holdout;

    double envelopeSlack = 0.05;

    /** Tikhonov damping on the normal equations; keeps degenerate
     *  (never-exercised) feature columns at coefficient ~0. */
    double ridge = 1e-8;
};

/**
 * Fit one model per benchmark in @p suite against the exact
 * simulator (through SimCache), using @p baseline's simulation
 * windows for every run. Deterministic: the (benchmark, config) grid
 * is simulated in parallel but folded in index order.
 */
SurrogateTable fitSurrogateTable(const std::vector<BenchmarkProfile> &suite,
                                 const SimConfig &baseline,
                                 const SurrogateFitPlan &plan);

/**
 * The deterministic sweep of the reachable degradation space: every
 * Table 6 scheme scenario family (YAPD/H-YAPD masks, VACA slow-way
 * counts, Hybrid mixes, binning latencies), way-placement
 * permutations of each, and the bypass-less replay variants.
 */
std::vector<SimConfig> surrogateTrainingConfigs();

/**
 * @p count randomized reachable degraded configurations drawn from
 * Rng(seed): random way masks, per-way +0/+1 latencies, bypass
 * depth, and occasional binning-style uniform raises. Used for the
 * held-out error bound (prop_surrogate) and the fit's holdout split.
 */
std::vector<SimConfig> surrogateHoldoutConfigs(std::uint64_t seed,
                                               std::size_t count);

/**
 * The one object campaign code asks for CPI: prices the mean
 * relative CPI degradation of a degraded configuration over a
 * benchmark suite, by exact simulation (CpiMode::Sim), by the fitted
 * table (CpiMode::Surrogate), or by the table inside its validated
 * envelope with exact-sim fallback outside it (CpiMode::Auto).
 *
 * Deterministic and thread-safe: baseline CPIs are computed eagerly
 * at construction, the surrogate path is a pure dot product, and the
 * exact path goes through the (thread-safe) SimCache. Maintains the
 * `cpi_surrogate_chips` / `cpi_sim_chips` / `cpi_auto_fallbacks`
 * metrics counters.
 */
class CpiOracle
{
  public:
    /**
     * @p table supplies the fit windows, envelope and models. The
     * benchmark set is the table's models, resolved by name against
     * spec2000Profiles(); a table with no models (legal for
     * CpiMode::Sim) means the full SPEC 2000 suite. Surrogate/Auto
     * yac_fatal on an empty table.
     */
    explicit CpiOracle(CpiMode mode, SurrogateTable table = {});

    /** As above with an explicit profile set (tests, custom suites);
     *  profiles must cover every model name. */
    CpiOracle(CpiMode mode, SurrogateTable table,
              std::vector<BenchmarkProfile> suite);

    /**
     * Build from EngineSpec fields: loads spec.surrogate for
     * Surrogate/Auto (yac_fatal on a missing/rejected table, and on
     * a content-hash mismatch when @p expect_hash is nonzero).
     */
    static CpiOracle fromSpec(const EngineSpec &spec,
                              std::uint64_t expect_hash = 0);

    /**
     * Mean relative CPI degradation of @p config over the suite.
     * The config's simulation windows and trace seed are replaced by
     * the table's, so exact and surrogate prices always refer to the
     * same reference runs. A config identical to the baseline prices
     * at exactly 0 in every mode.
     */
    double meanDegradation(const SimConfig &config) const;

    CpiMode mode() const { return mode_; }
    const SurrogateTable &table() const { return table_; }

    /** The baseline every degradation is measured against. */
    const SimConfig &baseline() const { return baseline_; }

  private:
    double exactMean(const SimConfig &config) const;

    CpiMode mode_;
    SurrogateTable table_;
    SimConfig baseline_;
    std::vector<BenchmarkProfile> suite_;
    std::vector<double> baselineCpis_; //!< per suite_ entry; Sim/Auto
};

} // namespace yac

#endif // YAC_SIM_SURROGATE_HH
