/**
 * @file
 * Out-of-order core parameters, defaulted to the paper's base
 * processor (Section 5.2): 4-wide, 128-entry issue queue, 256-entry
 * ROB, 7 pipeline stages between schedule and execute, and the
 * single-entry load-bypass buffers of the VACA datapath.
 */

#ifndef YAC_SIM_CORE_PARAMS_HH
#define YAC_SIM_CORE_PARAMS_HH

namespace yac
{

/** Static core configuration. */
struct CoreParams
{
    int fetchWidth = 4;
    int dispatchWidth = 4;
    int issueWidth = 4;
    int commitWidth = 4;

    int iqSize = 128;  //!< issue-queue entries
    int robSize = 256; //!< reorder-buffer entries

    /** Pipeline stages between the scheduling decision and execute. */
    int schedToExec = 7;

    int intPorts = 4; //!< integer FUs
    int fpPorts = 2;  //!< floating-point FUs
    int memPorts = 2; //!< data-cache ports

    /**
     * Load-bypass buffer depth: how many cycles of extra load latency
     * a dependent can absorb by stalling at the functional-unit input
     * instead of replaying. The paper uses single-entry buffers
     * (depth 1, allowing 4-or-5-cycle loads); 0 models a conventional
     * core without VACA support.
     */
    int loadBypassDepth = 1;

    /**
     * The load latency the scheduler assumes when speculatively
     * waking dependents. Equal to the L1D base hit latency in the
     * VACA machine; naive binning raises it to the binned latency.
     */
    int assumedLoadLatency = 4;

    /** Front-end refill penalty after a branch mispredict resolves. */
    int redirectPenalty = 10;
};

} // namespace yac

#endif // YAC_SIM_CORE_PARAMS_HH
