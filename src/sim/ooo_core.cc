#include "sim/ooo_core.hh"

#include <algorithm>

#include "util/logging.hh"

namespace yac
{

OooCore::OooCore(const CoreParams &params, MemoryHierarchy &hierarchy,
                 TraceSource &trace)
    : params_(params), hierarchy_(hierarchy), trace_(trace),
      rob_(static_cast<std::size_t>(params.robSize)),
      renameTable_(kNumLogicalRegs, kNoProducer), wheel_(kWheelSize)
{
    yac_assert(params_.robSize > 0 && params_.iqSize > 0,
               "ROB and IQ must be non-empty");
    yac_assert(params_.schedToExec >= 1,
               "need at least one stage between schedule and execute");
    yac_assert(params_.loadBypassDepth >= 0, "buffer depth is negative");
}

DynInst &
OooCore::inst(std::uint64_t seq)
{
    return rob_[seq % rob_.size()];
}

const DynInst &
OooCore::inst(std::uint64_t seq) const
{
    return rob_[seq % rob_.size()];
}

void
OooCore::schedule(EventKind kind, std::uint64_t seq, std::uint64_t delta)
{
    yac_assert(delta < kWheelSize, "event beyond wheel horizon");
    wheel_[(now_ + delta) % kWheelSize].push_back({kind, seq});
}

std::uint64_t
OooCore::sourceAvail(std::int64_t prod_seq) const
{
    if (prod_seq == kNoProducer ||
        static_cast<std::uint64_t>(prod_seq) < headSeq_) {
        return kAvailNow; // architectural or already committed
    }
    const DynInst &p = inst(static_cast<std::uint64_t>(prod_seq));
    switch (p.state) {
      case InstState::WaitIQ:
        return kAvailUnknown; // replayed / never scheduled
      case InstState::Scheduled:
      case InstState::Executing:
        return p.availCycle; // predicted or resolved
      case InstState::Done:
      case InstState::Committed:
        return p.availCycle;
    }
    yac_panic("unknown instruction state");
}

void
OooCore::handleExecEntry(DynInst &di)
{
    if (di.state != InstState::Scheduled)
        return; // stale event from a replayed incarnation

    // Latest availability over both sources, and whether any late
    // source traces back to a cache miss (the only event that forces
    // a selective replay in the VACA datapath: a buffered dependant
    // that "does not receive its input" had a load that missed).
    std::uint64_t avail = kAvailNow;
    bool late_source_missed = false;
    bool blocked = false;
    for (std::int64_t prod : di.prodSeq) {
        const std::uint64_t a = sourceAvail(prod);
        if (a == kAvailUnknown) {
            blocked = true;
            break;
        }
        if (a > now_) {
            const DynInst &p = inst(static_cast<std::uint64_t>(prod));
            if (p.availKnown && p.l1Miss)
                late_source_missed = true;
        }
        avail = std::max(avail, a);
    }

    if (blocked) {
        // A producer was itself replayed: selective replay.
        di.state = InstState::WaitIQ;
        di.earliestSched = now_ + 1;
        ++di.replays;
        ++window_.replays;
        return;
    }

    if (avail > now_) {
        const std::uint64_t late = avail - now_;
        const bool have_buffers = params_.loadBypassDepth > 0;
        if (have_buffers && !late_source_missed &&
            late < kWheelSize / 2) {
            // Wait at the functional-unit input: the data is on its
            // way from a slow-but-hitting way (or a producer that was
            // itself stalled); the buffer latches it when the
            // register tag broadcast matches.
            di.bufferStalled = true;
            window_.loadBypassStalls += late;
            // Consumers must see the shifted completion.
            if (!di.availKnown && di.producesValue())
                di.availCycle += late;
            schedule(EventKind::ExecEntry, di.seq, late);
            return;
        }
        // No buffers, or the input is not coming (L1 miss): flush
        // and selectively replay so the dependant arrives when the
        // data actually does.
        di.state = InstState::WaitIQ;
        const std::uint64_t sched_to_exec =
            static_cast<std::uint64_t>(params_.schedToExec);
        di.earliestSched = std::max(
            now_ + 1,
            avail > sched_to_exec ? avail - sched_to_exec : now_ + 1);
        ++di.replays;
        ++window_.replays;
        return;
    }

    startExecution(di);
}

void
OooCore::startExecution(DynInst &di)
{
    // Ports were reserved at select time (constant schedule-to-
    // execute offset), so execution starts unconditionally here.
    di.state = InstState::Executing;
    int latency = opLatency(di.trace.op);
    if (di.trace.isLoad()) {
        const MemAccessOutcome mem =
            hierarchy_.dataAccess(di.trace.addr, false);
        latency = mem.latency;
        di.l1Miss = !mem.l1Hit;
        if (mem.l1Hit &&
            mem.latency > hierarchy_.l1d().params().hitLatency) {
            ++window_.slowWayLoads;
        }
    } else if (di.trace.isStore()) {
        hierarchy_.dataAccess(di.trace.addr, true);
        latency = 1; // completion is fire-and-forget (write buffer)
    }

    di.availCycle = now_ + static_cast<std::uint64_t>(latency);
    di.availKnown = true;
    schedule(EventKind::Complete, di.seq,
             static_cast<std::uint64_t>(latency));
}

void
OooCore::processEvents()
{
    auto &slot = wheel_[now_ % kWheelSize];
    if (slot.empty())
        return;
    // Oldest instructions first, so retries respect age priority.
    std::sort(slot.begin(), slot.end(),
              [](const Event &a, const Event &b) { return a.seq < b.seq; });
    // Events may append to future slots; this slot is drained once.
    // The scratch vector keeps the drained slot's capacity alive
    // across cycles, so neither vector reallocates in steady state.
    eventScratch_.clear();
    eventScratch_.swap(slot);
    for (const Event &ev : eventScratch_) {
        DynInst &di = inst(ev.seq);
        if (di.seq != ev.seq)
            continue; // instruction squashed/recycled
        switch (ev.kind) {
          case EventKind::ExecEntry:
            handleExecEntry(di);
            break;
          case EventKind::Complete:
            if (di.state == InstState::Executing) {
                di.state = InstState::Done;
                --iqCount_;
                if (di.trace.isBranch() && di.trace.mispredicted &&
                    waitingForBranch_) {
                    waitingForBranch_ = false;
                    fetchBlockedUntil_ = now_ +
                        static_cast<std::uint64_t>(
                            params_.redirectPenalty);
                }
            }
            break;
        }
    }
}

void
OooCore::commit()
{
    int committed = 0;
    while (committed < params_.commitWidth && headSeq_ < tailSeq_) {
        DynInst &di = inst(headSeq_);
        if (di.state != InstState::Done)
            break;
        di.state = InstState::Committed;
        ++headSeq_;
        ++committedTotal_;
        ++committed;
    }
}

void
OooCore::scheduleReady()
{
    int issued = 0;
    for (std::uint64_t s = headSeq_; s < tailSeq_; ++s) {
        if (issued >= params_.issueWidth)
            break;
        DynInst &di = inst(s);
        if (di.state != InstState::WaitIQ || di.earliestSched > now_)
            continue;

        // Compute the earliest legal schedule cycle from the current
        // producer estimates; cache it so future scans are cheap.
        std::uint64_t earliest = now_;
        bool blocked = false;
        for (std::int64_t prod : di.prodSeq) {
            const std::uint64_t a = sourceAvail(prod);
            if (a == kAvailUnknown) {
                blocked = true;
                break;
            }
            const std::uint64_t sched_to_exec =
                static_cast<std::uint64_t>(params_.schedToExec);
            if (a > sched_to_exec)
                earliest = std::max(earliest, a - sched_to_exec);
        }
        if (blocked) {
            di.earliestSched = now_ + 1;
            continue;
        }
        if (earliest > now_) {
            di.earliestSched = earliest;
            continue;
        }

        // Reserve a functional-unit / cache port for the execute
        // cycle (constant offset, so per-select-cycle counting is
        // exact). An instruction that cannot get a port this cycle
        // stays in the queue.
        int *port = nullptr;
        int limit = 0;
        switch (di.trace.op) {
          case OpClass::Load:
          case OpClass::Store:
            port = &memPortsUsed_;
            limit = params_.memPorts;
            break;
          case OpClass::FpAlu:
          case OpClass::FpMul:
            port = &fpPortsUsed_;
            limit = params_.fpPorts;
            break;
          default:
            port = &intPortsUsed_;
            limit = params_.intPorts;
            break;
        }
        if (*port >= limit)
            continue;
        ++*port;

        di.state = InstState::Scheduled;
        di.schedCycle = now_;
        const std::uint64_t sched_to_exec =
            static_cast<std::uint64_t>(params_.schedToExec);
        const int assumed = di.trace.isLoad()
            ? params_.assumedLoadLatency
            : opLatency(di.trace.op);
        di.availCycle = now_ + sched_to_exec +
            static_cast<std::uint64_t>(assumed);
        di.availKnown = false;
        schedule(EventKind::ExecEntry, di.seq, sched_to_exec);
        ++issued;
    }
}

void
OooCore::dispatch()
{
    if (now_ < fetchBlockedUntil_ || waitingForBranch_)
        return;
    int dispatched = 0;
    while (dispatched < params_.dispatchWidth &&
           tailSeq_ - headSeq_ <
               static_cast<std::uint64_t>(params_.robSize) &&
           iqCount_ < params_.iqSize) {
        const TraceInst tr = trace_.next();

        // Instruction fetch: crossing into a new cache block may miss.
        const std::uint64_t block =
            tr.pc / hierarchy_.l1i().params().blockBytes;
        if (block != currentFetchBlock_) {
            currentFetchBlock_ = block;
            const int lat = hierarchy_.instFetch(tr.pc);
            const int hit = hierarchy_.l1i().params().hitLatency;
            if (lat > hit) {
                fetchBlockedUntil_ = now_ +
                    static_cast<std::uint64_t>(lat - hit);
                break;
            }
        }

        DynInst &di = inst(tailSeq_);
        di = DynInst();
        di.trace = tr;
        di.seq = tailSeq_;
        di.state = InstState::WaitIQ;
        di.dispatchCycle = now_;
        di.earliestSched = now_ + 1;

        // Rename: map sources to in-flight producers. The trace uses
        // a single unified logical register space, so load values
        // feed integer and floating-point consumers alike.
        const std::int16_t srcs[2] = {tr.src1, tr.src2};
        for (int i = 0; i < 2; ++i) {
            if (srcs[i] == kNoReg)
                continue;
            const std::int64_t prod =
                renameTable_[static_cast<std::size_t>(srcs[i])];
            if (prod != kNoProducer &&
                static_cast<std::uint64_t>(prod) >= headSeq_) {
                di.prodSeq[i] = prod;
            }
        }
        if (tr.dst != kNoReg) {
            renameTable_[static_cast<std::size_t>(tr.dst)] =
                static_cast<std::int64_t>(tailSeq_);
        }

        ++tailSeq_;
        ++iqCount_;
        ++dispatched;

        if (tr.isLoad())
            ++window_.loads;
        if (tr.isStore())
            ++window_.stores;
        if (tr.isBranch()) {
            ++window_.branches;
            if (tr.mispredicted) {
                ++window_.mispredicts;
                waitingForBranch_ = true;
                break; // stop dispatching down the wrong path
            }
        }
    }
}

void
OooCore::run(std::uint64_t n)
{
    const std::uint64_t target = committedTotal_ + n;
    std::uint64_t last_progress_cycle = now_;
    std::uint64_t last_committed = committedTotal_;
    while (committedTotal_ < target) {
        intPortsUsed_ = 0;
        fpPortsUsed_ = 0;
        memPortsUsed_ = 0;
        processEvents();
        commit();
        scheduleReady();
        dispatch();
        window_.iqOccupancySum += iqCount_;
        window_.robOccupancySum +=
            static_cast<double>(tailSeq_ - headSeq_);
        ++now_;
        if (committedTotal_ != last_committed) {
            last_committed = committedTotal_;
            last_progress_cycle = now_;
        } else if (now_ - last_progress_cycle > 100000) {
            yac_panic("core deadlock: no commit for 100k cycles at "
                      "cycle ", now_, ", head seq ", headSeq_);
        }
    }
}

void
OooCore::beginMeasurement()
{
    window_ = SimStats();
    windowStartCycle_ = now_;
    windowStartInsts_ = committedTotal_;
    hierarchy_.l1d().clearStats();
    hierarchy_.l1i().clearStats();
    hierarchy_.l2().clearStats();
}

SimStats
OooCore::stats() const
{
    SimStats s = window_;
    s.cycles = now_ - windowStartCycle_;
    s.instructions = committedTotal_ - windowStartInsts_;
    s.l1d = hierarchy_.l1d().stats();
    s.l1i = hierarchy_.l1i().stats();
    s.l2 = hierarchy_.l2().stats();
    return s;
}

} // namespace yac
