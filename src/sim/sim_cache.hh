/**
 * @file
 * Content-addressed memo cache for simulation results. The same
 * (benchmark profile, SimConfig) pair always produces the same
 * SimStats -- traces are deterministic in (profile name, seed) and
 * the pipeline model has no other state -- so scenarios that recur
 * across benches and schemes (the Table 6 baseline CPIs, identical
 * degraded configurations reached by different schemes) need to
 * simulate only once.
 *
 * The key is a canonical FNV-1a hash over every semantically
 * significant field of the profile and configuration: all profile
 * numbers plus its name (the trace generator folds the name into the
 * stream seed), the core parameters, each cache level's geometry and
 * yield knobs, the memory latency, the instruction windows and the
 * trace seed. Cosmetic fields (SimConfig::label, CacheParams::name)
 * are excluded so identically-shaped scenarios that differ only in
 * their display label share one entry.
 *
 * Optionally persists to disk (--sim-cache=FILE): a versioned binary
 * header (magic, format version, sizeof(SimStats)) guards against
 * format or ABI drift, and a checksum rejects truncated or corrupt
 * files -- a bad file is ignored, never trusted.
 */

#ifndef YAC_SIM_SIM_CACHE_HH
#define YAC_SIM_SIM_CACHE_HH

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "sim/sim_stats.hh"
#include "sim/simulation.hh"
#include "workload/profile.hh"

namespace yac
{

/** Process-wide, thread-safe simulation memo cache. */
class SimCache
{
  public:
    static SimCache &instance();

    /** Canonical content hash of one simulation's inputs. */
    static std::uint64_t key(const BenchmarkProfile &profile,
                             const SimConfig &config);

    /** Memoization on/off (on by default; results are identical
     *  either way, only the wall time differs). */
    bool enabled() const;
    void setEnabled(bool on);

    /** Look up a result; true and *out filled on a hit. */
    bool lookup(std::uint64_t key, SimStats *out) const;

    /** Store a result (last writer wins; all writers agree). */
    void insert(std::uint64_t key, const SimStats &stats);

    /** Drop every entry (does not touch the persistence path). */
    void clear();

    std::size_t size() const;

    /**
     * Merge entries persisted at @p path into the cache. Returns
     * false -- leaving the cache untouched -- if the file is missing,
     * has the wrong magic/version/layout, or fails its checksum.
     */
    bool load(const std::string &path);

    /** Write the cache to @p path. Returns false on I/O failure. */
    bool save(const std::string &path) const;

    /**
     * What --sim-cache=FILE does: load @p path now (a missing or
     * corrupt file just starts cold) and save the cache back to it
     * at process exit.
     */
    void persistTo(const std::string &path);

    /** Save to the persistTo() path, if one is set. */
    void saveIfPersisting() const;

  private:
    SimCache() = default;

    mutable std::shared_mutex mutex_;
    std::unordered_map<std::uint64_t, SimStats> entries_;
    bool enabled_ = true;
    std::string persistPath_;
};

/**
 * simulateBenchmark through the memo cache: returns the cached
 * SimStats on a hit, otherwise simulates and stores. Bitwise
 * identical to simulateBenchmark (the cache stores the raw struct).
 * Maintains the `sim_cache_hits` / `sim_cache_misses` counters.
 */
SimStats simulateBenchmarkCached(const BenchmarkProfile &profile,
                                 const SimConfig &config);

} // namespace yac

#endif // YAC_SIM_SIM_CACHE_HH
