/**
 * @file
 * Builders for the simulation configurations of every yield-aware
 * scheme and cache way-latency signature in Table 6. A configuration
 * "n4-n5-n6" means n4 ways need 4 cycles, n5 need 5 and n6 need 6+;
 * each scheme turns that manufactured signature into a runnable
 * machine (or cannot, in which case the chip is a loss and no
 * scenario exists).
 */

#ifndef YAC_SIM_SCENARIOS_HH
#define YAC_SIM_SCENARIOS_HH

#include <string>

#include "sim/simulation.hh"

namespace yac
{

/** The unmodified base processor with a fully healthy cache. */
SimConfig baselineScenario();

/**
 * YAPD (or H-YAPD, identical hit/miss behaviour): @p disabled_ways
 * ways powered down, every remaining way at the base latency.
 */
SimConfig yapdScenario(int disabled_ways = 1);

/**
 * H-YAPD modeled explicitly through the rotated decoder: one
 * horizontal region powered down. Hit/miss behaviour should match
 * yapdScenario(1); the pair exists so tests can verify the paper's
 * equivalence claim.
 */
SimConfig hyapdScenario(std::size_t disabled_region = 0);

/**
 * VACA: all ways enabled, @p ways5 of them at 5 cycles. Dependants
 * are scheduled with the 4-cycle assumption and absorb the extra
 * cycle in the load-bypass buffers.
 */
SimConfig vacaScenario(int ways5);

/**
 * Hybrid with one way powered down: of the remaining 3 ways,
 * @p ways5 run at 5 cycles.
 */
SimConfig hybridOffScenario(int ways5);

/**
 * Naive binning (Section 4.5): the whole cache is scheduled at
 * @p cycles (5 or 6); no load-bypass buffers are needed because the
 * scheduler assumption matches the latency.
 */
SimConfig binningScenario(int cycles);

/**
 * Scenario for a Table 6 signature under a scheme, by label, e.g.
 * ("3-1-0", "VACA") or ("2-1-1", "Hybrid"). yac_fatal when the
 * scheme cannot run that signature (the N/A cells of Table 6).
 */
SimConfig table6Scenario(const std::string &signature,
                         const std::string &scheme);

} // namespace yac

#endif // YAC_SIM_SCENARIOS_HH
