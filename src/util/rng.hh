/**
 * @file
 * Deterministic random number generation for Monte Carlo experiments.
 *
 * All stochastic behaviour in yac flows through Rng so that every
 * experiment is exactly reproducible from a single 64-bit seed. The
 * core generator is xoshiro256++, which is fast, well distributed and
 * trivially splittable via SplitMix64-seeded substreams.
 */

#ifndef YAC_UTIL_RNG_HH
#define YAC_UTIL_RNG_HH

#include <array>
#include <cmath>
#include <cstdint>

#include "util/logging.hh"

namespace yac
{

/**
 * Shared truncation cut for process-parameter draws, in sigmas.
 *
 * Every physical parameter draw in the campaign (naive sampling,
 * tilted proposals, and the SIMD block sampler) rejects |z| > 3: the
 * paper's Table 1 spreads are quoted as 3-sigma percentages, and the
 * tilted-proposal likelihood-ratio weights in sampling_plan.cc assume
 * the same +/-3 sigma support on both the nominal and proposal
 * densities. Hoisted here so the sampler, process_params and the
 * truncatedNormal default cannot drift apart.
 */
constexpr double kSigmaCut = 3.0;

/**
 * xoshiro256++ pseudo random number generator with convenience
 * distributions (uniform, normal, truncated normal, lognormal).
 *
 * Draw contract: normal() is Box-Muller and carries a one-deviate
 * spare -- each Box-Muller round consumes exactly two uniforms
 * (re-drawing u1 while it is 0) and yields two deviates, cos first,
 * sin second. The spare is part of this generator's observable
 * state: it never crosses streams (split() builds a fresh child with
 * no spare) and never survives reseeding (reseed() clears it), so a
 * generator's output is a pure function of (seed, calls since seed).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via SplitMix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /**
     * Re-seed in place: bitwise-identical to constructing Rng(seed),
     * including dropping any cached Box-Muller spare.
     */
    void reseed(std::uint64_t seed);

    /**
     * Next raw 64-bit value.
     *
     * Defined inline (as are the distributions below it feeds):
     * Monte Carlo sampling draws thousands of deviates per chip, and
     * the cross-TU call per draw was a measurable share of campaign
     * time. Inlining does not change any result: the expressions are
     * identical and x86-64 SSE2 rounds every operation individually.
     */
    std::uint64_t next()
    {
        const std::uint64_t result =
            rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /**
     * Derive an independent child generator. Children with distinct
     * stream ids are statistically independent of each other and of
     * the parent's future output.
     *
     * @param stream_id Identifier folded into the child seed.
     */
    Rng split(std::uint64_t stream_id) const;

    /** Uniform double in [0, 1). */
    double uniform()
    {
        // 53 random mantissa bits -> double in [0, 1).
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t uniformInt(std::uint64_t n);

    /** True when a Box-Muller spare is cached (the next normal()
     *  returns it without consuming uniforms). Exposed so tests can
     *  pin down the spare lifecycle across split()/reseed(). */
    bool hasSpare() const { return hasSpare_; }

    /** Standard normal deviate (Box-Muller, cached spare). */
    double normal()
    {
        if (hasSpare_) {
            hasSpare_ = false;
            return spareNormal_;
        }
        double u1 = 0.0;
        // Avoid log(0).
        while (u1 == 0.0)
            u1 = uniform();
        const double u2 = uniform();
        const double radius = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        spareNormal_ = radius * std::sin(theta);
        hasSpare_ = true;
        return radius * std::cos(theta);
    }

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double sigma)
    {
        return mean + sigma * normal();
    }

    /**
     * Normal deviate truncated (by rejection) to
     * [mean - cut*sigma, mean + cut*sigma].
     *
     * Used for process parameters where physically impossible values
     * (for example, a negative gate length) must never be produced.
     * The default cut is the shared kSigmaCut the whole sampling
     * stack assumes.
     */
    double truncatedNormal(double mean, double sigma,
                           double cut = kSigmaCut)
    {
        yac_assert(cut > 0.0, "truncation window must be positive");
        if (sigma == 0.0)
            return mean;
        for (;;) {
            const double z = normal();
            if (std::fabs(z) <= cut)
                return mean + sigma * z;
        }
    }

    /** Lognormal deviate: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
    double spareNormal_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace yac

#endif // YAC_UTIL_RNG_HH
