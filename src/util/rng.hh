/**
 * @file
 * Deterministic random number generation for Monte Carlo experiments.
 *
 * All stochastic behaviour in yac flows through Rng so that every
 * experiment is exactly reproducible from a single 64-bit seed. The
 * core generator is xoshiro256++, which is fast, well distributed and
 * trivially splittable via SplitMix64-seeded substreams.
 */

#ifndef YAC_UTIL_RNG_HH
#define YAC_UTIL_RNG_HH

#include <array>
#include <cstdint>

namespace yac
{

/**
 * xoshiro256++ pseudo random number generator with convenience
 * distributions (uniform, normal, truncated normal, lognormal).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via SplitMix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /**
     * Derive an independent child generator. Children with distinct
     * stream ids are statistically independent of each other and of
     * the parent's future output.
     *
     * @param stream_id Identifier folded into the child seed.
     */
    Rng split(std::uint64_t stream_id) const;

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal deviate (Box-Muller, cached spare). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double sigma);

    /**
     * Normal deviate truncated (by rejection) to
     * [mean - cut*sigma, mean + cut*sigma].
     *
     * Used for process parameters where physically impossible values
     * (for example, a negative gate length) must never be produced.
     */
    double truncatedNormal(double mean, double sigma, double cut = 4.0);

    /** Lognormal deviate: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

  private:
    std::array<std::uint64_t, 4> state_;
    double spareNormal_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace yac

#endif // YAC_UTIL_RNG_HH
