/**
 * @file
 * Deterministic chunked parallelism for Monte Carlo campaigns.
 *
 * Every campaign hot path in yac iterates over independent chips
 * (each chip draws from its own Rng substream), so the sweeps are
 * embarrassingly parallel. The one thing threads must not change is
 * the *result*: yac's contract is that every experiment is exactly
 * reproducible from a single seed, byte-identical at any thread
 * count.
 *
 * The utility here enforces that by construction:
 *
 *  - Work is split into fixed-size chunks of contiguous indices
 *    (kStatChunk by default). The chunk boundaries depend only on the
 *    problem size, never on the thread count.
 *  - Each chunk writes only its own output slots (indexed by chip or
 *    by chunk), so the stored per-chip results are trivially
 *    identical to a serial run.
 *  - Reductions (RunningStats, revenue sums, counters) are
 *    accumulated per chunk and merged *in chunk order* after the
 *    loop. Floating-point addition is not associative, so this fixed
 *    merge tree is what makes the statistics bit-stable across 1, 2
 *    or N threads -- the serial fallback executes the exact same
 *    chunked accumulation.
 *
 * The worker count comes from setThreads(), the YAC_THREADS
 * environment variable, or std::thread::hardware_concurrency(), in
 * that order of precedence. With one thread (or a nested call from
 * inside a parallel region) everything runs inline on the calling
 * thread with no pool machinery at all.
 */

#ifndef YAC_UTIL_PARALLEL_HH
#define YAC_UTIL_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace yac
{
namespace parallel
{

/**
 * Default chunk size for campaign loops. Small enough that a
 * 2000-chip campaign load-balances across many workers, large enough
 * that chunk dispatch overhead is negligible next to one chip's
 * circuit evaluation. Reductions chunked at this size are part of
 * the deterministic contract: changing it changes the (last-ulp)
 * statistics, so treat it like a file-format constant.
 */
inline constexpr std::size_t kStatChunk = 64;

/** Loop body over one chunk: half-open index range [begin, end). */
using ChunkBody =
    std::function<void(std::size_t chunk, std::size_t begin,
                       std::size_t end)>;

/** Number of chunks [0, n) splits into at the given chunk size. */
std::size_t chunkCount(std::size_t n, std::size_t chunk_size);

/**
 * Worker count of the global pool (>= 1). Resolved on first use from
 * setThreads() / YAC_THREADS / hardware_concurrency().
 */
std::size_t threads();

/**
 * Override the worker count; 0 restores automatic selection. The
 * existing pool is torn down and lazily rebuilt. Must not be called
 * while a parallel loop is running on another thread.
 */
void setThreads(std::size_t n);

/**
 * Run @p body over every chunk of [0, n). Chunks execute
 * concurrently in unspecified order; the body must only write state
 * owned by its own chunk or index range. Blocks until all chunks
 * complete; the first exception thrown by a body is rethrown on the
 * calling thread. Calls from inside a parallel region run serially
 * inline (no nested parallelism, no deadlock).
 */
void forChunks(std::size_t n, std::size_t chunk_size,
               const ChunkBody &body);

/**
 * Per-index convenience for coarse tasks (each index is one unit of
 * scheduling): forChunks with a chunk size of 1. Use forChunks with
 * kStatChunk for fine-grained campaign loops instead.
 */
void forEach(std::size_t n,
             const std::function<void(std::size_t)> &body);

} // namespace parallel
} // namespace yac

#endif // YAC_UTIL_PARALLEL_HH
