#include "util/normal_source.hh"

#include "util/logging.hh"

namespace yac
{

#if YAC_VECMATH_X86

namespace
{

/** One 4-wide Box-Muller round: draw four (u1, u2) pairs in lane
 *  order from @p rng and produce eight candidates, cos before sin
 *  per lane. Returns them through @p zc (cos) / @p zs (sin). */
YAC_SIMD_TARGET inline void
boxMullerBatch(Rng &rng, double *zc, double *zs)
{
    alignas(32) double u1[4];
    alignas(32) double u2[4];
    for (int lane = 0; lane < 4; ++lane) {
        double u = rng.uniform();
        while (u == 0.0) // avoid log(0), as scalar normal() does
            u = rng.uniform();
        u1[lane] = u;
        u2[lane] = rng.uniform();
    }
    const __m256d radius = vecmath::bmRadius4(_mm256_load_pd(u1));
    const __m256d theta = _mm256_mul_pd(
        _mm256_set1_pd(2.0 * M_PI), _mm256_load_pd(u2));
    __m256d s, c;
    vecmath::sincos4(theta, &s, &c);
    _mm256_store_pd(zc, _mm256_mul_pd(radius, c));
    _mm256_store_pd(zs, _mm256_mul_pd(radius, s));
}

} // namespace

void
NormalSource::fillNormalsAvx2(Rng &rng, double *out, std::size_t n)
{
    alignas(32) double zc[4];
    alignas(32) double zs[4];
    std::size_t i = 0;
    while (i < n) {
        boxMullerBatch(rng, zc, zs);
        // Surplus candidates past n are discarded, never cached:
        // the fill is a pure function of (rng state, n).
        for (int lane = 0; lane < 4 && i < n; ++lane) {
            out[i++] = zc[lane];
            if (i < n)
                out[i++] = zs[lane];
        }
    }
}

void
NormalSource::fillTruncatedNormalsAvx2(Rng &rng, double *out,
                                       std::size_t n, double cut)
{
    yac_assert(cut > 0.0, "truncation window must be positive");
    alignas(32) double zc[4];
    alignas(32) double zs[4];
    std::size_t i = 0;
    while (i < n) {
        boxMullerBatch(rng, zc, zs);
        for (int lane = 0; lane < 4 && i < n; ++lane) {
            if (std::fabs(zc[lane]) <= cut)
                out[i++] = zc[lane];
            if (i < n && std::fabs(zs[lane]) <= cut)
                out[i++] = zs[lane];
        }
    }
}

#else // !YAC_VECMATH_X86

// resolveSimdKernel never returns Avx2 on a non-x86 host, so these
// are unreachable; panic rather than silently mis-sample.

void
NormalSource::fillNormalsAvx2(Rng &, double *, std::size_t)
{
    yac_panic("AVX2 NormalSource on a non-x86 build");
}

void
NormalSource::fillTruncatedNormalsAvx2(Rng &, double *, std::size_t,
                                       double)
{
    yac_panic("AVX2 NormalSource on a non-x86 build");
}

#endif // YAC_VECMATH_X86

} // namespace yac
