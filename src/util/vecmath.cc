#include "util/vecmath.hh"

#include <cmath>

#include "trace/metrics.hh"
#include "util/logging.hh"

namespace yac
{
namespace vecmath
{

const char *
simdModeName(SimdMode mode)
{
    switch (mode) {
    case SimdMode::Off:
        return "off";
    case SimdMode::Auto:
        return "auto";
    case SimdMode::Avx2:
        return "avx2";
    }
    yac_panic("unreachable SimdMode");
}

const char *
simdKernelName(SimdKernel kernel)
{
    switch (kernel) {
    case SimdKernel::Scalar:
        return "scalar";
    case SimdKernel::Avx2:
        return "avx2";
    }
    yac_panic("unreachable SimdKernel");
}

SimdMode
simdModeFromName(const std::string &name)
{
    if (name == "off")
        return SimdMode::Off;
    if (name == "auto")
        return SimdMode::Auto;
    if (name == "avx2")
        return SimdMode::Avx2;
    yac_fatal("--simd must be off, auto or avx2, got '", name, "'");
}

bool
hostHasAvx2Fma()
{
#if YAC_VECMATH_X86
    return __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

SimdKernel
resolveSimdKernel(SimdMode mode, bool host_has_avx2_fma)
{
    switch (mode) {
    case SimdMode::Off:
        return SimdKernel::Scalar;
    case SimdMode::Auto:
        return host_has_avx2_fma ? SimdKernel::Avx2
                                 : SimdKernel::Scalar;
    case SimdMode::Avx2:
        if (!host_has_avx2_fma)
            yac_fatal("--simd=avx2 requested but this host does not "
                      "support AVX2+FMA; use --simd=auto or "
                      "--simd=off");
        return SimdKernel::Avx2;
    }
    yac_panic("unreachable SimdMode");
}

SimdKernel
resolveSimdKernel(SimdMode mode)
{
    const SimdKernel kernel =
        resolveSimdKernel(mode, hostHasAvx2Fma());
    // Off is the implicit default everywhere; only an explicit SIMD
    // request leaves a dispatch record in the metrics registry.
    if (mode != SimdMode::Off) {
        trace::Metrics &metrics = trace::Metrics::instance();
        metrics
            .counter(kernel == SimdKernel::Avx2
                         ? "simd_dispatch_avx2"
                         : "simd_dispatch_scalar")
            .add(1);
    }
    return kernel;
}

#if YAC_VECMATH_X86

namespace
{

// The AVX2 loops live in dedicated target-attributed functions; the
// public wrappers below contain no vector types, so they compile (and
// run their scalar fallback) on any x86 host. The tail (n % 4) goes
// through the same 4-wide kernel via a padded buffer so every element
// sees identical code and rounding.

YAC_SIMD_TARGET void
expArrayAvx2(const double *x, double *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i, exp4(_mm256_loadu_pd(x + i)));
    if (i < n) {
        alignas(32) double pad[4] = {0.0, 0.0, 0.0, 0.0};
        for (std::size_t j = i; j < n; ++j)
            pad[j - i] = x[j];
        _mm256_store_pd(pad, exp4(_mm256_load_pd(pad)));
        for (std::size_t j = i; j < n; ++j)
            out[j] = pad[j - i];
    }
}

YAC_SIMD_TARGET void
logArrayAvx2(const double *x, double *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i, log4(_mm256_loadu_pd(x + i)));
    if (i < n) {
        alignas(32) double pad[4] = {1.0, 1.0, 1.0, 1.0};
        for (std::size_t j = i; j < n; ++j)
            pad[j - i] = x[j];
        _mm256_store_pd(pad, log4(_mm256_load_pd(pad)));
        for (std::size_t j = i; j < n; ++j)
            out[j] = pad[j - i];
    }
}

YAC_SIMD_TARGET void
powArrayAvx2(const double *x, double y, double *out, std::size_t n)
{
    const __m256d vy = _mm256_set1_pd(y);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i,
                         pow4(_mm256_loadu_pd(x + i), vy));
    if (i < n) {
        alignas(32) double pad[4] = {1.0, 1.0, 1.0, 1.0};
        for (std::size_t j = i; j < n; ++j)
            pad[j - i] = x[j];
        _mm256_store_pd(pad, pow4(_mm256_load_pd(pad), vy));
        for (std::size_t j = i; j < n; ++j)
            out[j] = pad[j - i];
    }
}

YAC_SIMD_TARGET void
sincosArrayAvx2(const double *x, double *sin_out, double *cos_out,
                std::size_t n)
{
    __m256d s, c;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        sincos4(_mm256_loadu_pd(x + i), &s, &c);
        _mm256_storeu_pd(sin_out + i, s);
        _mm256_storeu_pd(cos_out + i, c);
    }
    if (i < n) {
        alignas(32) double pad[4] = {0.0, 0.0, 0.0, 0.0};
        for (std::size_t j = i; j < n; ++j)
            pad[j - i] = x[j];
        sincos4(_mm256_load_pd(pad), &s, &c);
        alignas(32) double ps[4], pc[4];
        _mm256_store_pd(ps, s);
        _mm256_store_pd(pc, c);
        for (std::size_t j = i; j < n; ++j) {
            sin_out[j] = ps[j - i];
            cos_out[j] = pc[j - i];
        }
    }
}

YAC_SIMD_TARGET void
bmRadiusArrayAvx2(const double *u, double *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i,
                         bmRadius4(_mm256_loadu_pd(u + i)));
    if (i < n) {
        alignas(32) double pad[4] = {1.0, 1.0, 1.0, 1.0};
        for (std::size_t j = i; j < n; ++j)
            pad[j - i] = u[j];
        _mm256_store_pd(pad, bmRadius4(_mm256_load_pd(pad)));
        for (std::size_t j = i; j < n; ++j)
            out[j] = pad[j - i];
    }
}

} // namespace

void
expArray(const double *x, double *out, std::size_t n)
{
    if (hostHasAvx2Fma()) {
        expArrayAvx2(x, out, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::exp(x[i]);
}

void
logArray(const double *x, double *out, std::size_t n)
{
    if (hostHasAvx2Fma()) {
        logArrayAvx2(x, out, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::log(x[i]);
}

void
powArray(const double *x, double y, double *out, std::size_t n)
{
    if (hostHasAvx2Fma()) {
        powArrayAvx2(x, y, out, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::pow(x[i], y);
}

void
sincosArray(const double *x, double *sin_out, double *cos_out,
            std::size_t n)
{
    if (hostHasAvx2Fma()) {
        sincosArrayAvx2(x, sin_out, cos_out, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        sin_out[i] = std::sin(x[i]);
        cos_out[i] = std::cos(x[i]);
    }
}

void
bmRadiusArray(const double *u, double *out, std::size_t n)
{
    if (hostHasAvx2Fma()) {
        bmRadiusArrayAvx2(u, out, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::sqrt(-2.0 * std::log(u[i]));
}

#else // !YAC_VECMATH_X86

void
expArray(const double *x, double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::exp(x[i]);
}

void
logArray(const double *x, double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::log(x[i]);
}

void
powArray(const double *x, double y, double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::pow(x[i], y);
}

void
sincosArray(const double *x, double *sin_out, double *cos_out,
            std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        sin_out[i] = std::sin(x[i]);
        cos_out[i] = std::cos(x[i]);
    }
}

void
bmRadiusArray(const double *u, double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::sqrt(-2.0 * std::log(u[i]));
}

#endif // YAC_VECMATH_X86

} // namespace vecmath
} // namespace yac
