/**
 * @file
 * The machine-readable timing line every bench binary emits:
 *
 *   BENCH_<name>.json {"bench":"<name>","chips":N,"threads":T,
 *                      "wall_s":S,"chips_per_s":R
 *                      [,"phases":{"<k>":S,...}]
 *                      [,"counters":{"<k>":N,...}]}
 *
 * The optional trailing sections carry the campaign's phase-time
 * breakdown (sample/evaluate/classify/sim/test, seconds summed
 * across worker threads) and a counter snapshot from the
 * trace::Metrics registry. Keys are [A-Za-z0-9_]+ in strictly
 * ascending order; empty sections are omitted, so pre-observability
 * lines stay valid.
 *
 * Downstream tooling greps these lines out of bench logs and tracks
 * them across PRs, so the schema is golden: formatting and parsing
 * live here, in one place, and the property suite round-trips random
 * reports through both directions (tests/prop_bench_schema.cc).
 */

#ifndef YAC_UTIL_BENCH_REPORT_HH
#define YAC_UTIL_BENCH_REPORT_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace yac
{

/** One bench timing record. */
struct BenchReport
{
    std::string bench;        //!< bench name, [A-Za-z0-9_]+
    std::size_t chips = 0;    //!< campaign population
    std::size_t threads = 0;  //!< worker threads used
    double wallSeconds = 0.0; //!< wall-clock time [s]

    /** Per-phase CPU seconds (summed across threads); may be empty. */
    std::map<std::string, double> phaseSeconds;

    /** Counter snapshot at the end of the run; may be empty. */
    std::map<std::string, std::uint64_t> counters;

    /** Derived throughput [chips/s] (0 when wallSeconds is 0). */
    double chipsPerSecond() const;
};

/** True iff @p name is a legal bench name ([A-Za-z0-9_]+). */
bool isValidBenchName(const std::string &name);

/**
 * Render the full `BENCH_<name>.json {...}` line (no trailing
 * newline). @pre isValidBenchName(report.bench)
 */
std::string formatBenchReportLine(const BenchReport &report);

/**
 * Parse and validate one bench report line. Returns std::nullopt on
 * any schema violation (wrong prefix, bench/name mismatch, missing or
 * reordered keys, non-numeric fields, negative values, or a
 * chips_per_s inconsistent with chips/wall_s); when @p error is
 * non-null it receives a description of the first violation.
 */
std::optional<BenchReport> parseBenchReportLine(const std::string &line,
                                                std::string *error = nullptr);

} // namespace yac

#endif // YAC_UTIL_BENCH_REPORT_HH
