/**
 * @file
 * Block normal-deviate source: the draw API both the scalar and SIMD
 * sampling paths consume.
 *
 * NormalSource replaces ad-hoc per-call Rng::normal() spare-caching
 * in the batch sampling pipeline with explicit block fills:
 * fillNormals / fillTruncatedNormals draw n deviates from a caller
 * supplied Rng in one call. The kernel chosen at construction decides
 * how the block is produced:
 *
 *  - Scalar: byte-for-byte the legacy draw sequence. fillNormals is
 *    n calls to Rng::normal() (Box-Muller with the cached spare);
 *    fillTruncatedNormals runs the same |z| <= cut rejection loop
 *    Rng::truncatedNormal has always run. A campaign built on the
 *    scalar NormalSource is bitwise-identical to the pre-NormalSource
 *    code, which is the --simd=off anchor the tolerance suites
 *    compare against.
 *
 *  - Avx2: a 4-wide Box-Muller batch. Each round draws four (u1, u2)
 *    uniform pairs from the Rng in lane order (u1 re-drawn while 0,
 *    then u2 -- the same per-pair order as scalar), computes four
 *    radii sqrt(-2 ln u1) with vecmath::bmRadius4 and four
 *    (sin, cos)(2 pi u2) pairs with vecmath::sincos4, and yields up
 *    to eight candidates in lane order: lane 0 cos, lane 0 sin,
 *    lane 1 cos, lane 1 sin, ... (cos-before-sin matches the scalar
 *    Box-Muller's return-then-spare order). fillTruncatedNormals
 *    keeps only candidates with |z| <= cut. Candidates left over
 *    when the block is full are DISCARDED -- the block never caches
 *    a spare across calls, so a fill's output depends only on
 *    (Rng state, n, cut), never on previous fills. SIMD draws
 *    therefore differ numerically from scalar draws (different
 *    consumption pattern, kernel ulp error) but are themselves fully
 *    deterministic: same seed, same block sizes -> same bytes.
 *
 * The campaign-level draw-order contract built on top of this API is
 * documented in docs/PERFORMANCE.md section 4.
 */

#ifndef YAC_UTIL_NORMAL_SOURCE_HH
#define YAC_UTIL_NORMAL_SOURCE_HH

#include <cmath>
#include <cstddef>

#include "util/rng.hh"
#include "util/vecmath.hh"

namespace yac
{

/** Block draws of (truncated) standard normals from an Rng, scalar
 *  or 4-wide depending on the kernel chosen at construction. */
class NormalSource
{
  public:
    explicit NormalSource(
        vecmath::SimdKernel kernel = vecmath::SimdKernel::Scalar)
        : kernel_(kernel)
    {
    }

    vecmath::SimdKernel kernel() const { return kernel_; }

    /** Fill out[0..n) with standard normal deviates. The scalar
     *  branch is inline so single-deviate fills (the scalar
     *  campaign's hot path) compile down to the legacy Rng::normal()
     *  call chain. */
    void fillNormals(Rng &rng, double *out, std::size_t n) const
    {
        if (kernel_ == vecmath::SimdKernel::Scalar) {
            for (std::size_t i = 0; i < n; ++i)
                out[i] = rng.normal();
            return;
        }
        fillNormalsAvx2(rng, out, n);
    }

    /** Fill out[0..n) with standard normals rejected to |z| <= cut
     *  (the shared kSigmaCut by default, matching
     *  Rng::truncatedNormal). */
    void fillTruncatedNormals(Rng &rng, double *out, std::size_t n,
                              double cut = kSigmaCut) const
    {
        if (kernel_ == vecmath::SimdKernel::Scalar) {
            for (std::size_t i = 0; i < n; ++i) {
                double z;
                do {
                    z = rng.normal();
                } while (!(std::fabs(z) <= cut));
                out[i] = z;
            }
            return;
        }
        fillTruncatedNormalsAvx2(rng, out, n, cut);
    }

  private:
    static void fillNormalsAvx2(Rng &rng, double *out,
                                std::size_t n);
    static void fillTruncatedNormalsAvx2(Rng &rng, double *out,
                                         std::size_t n, double cut);

    vecmath::SimdKernel kernel_;
};

/**
 * Draw engines: the two interchangeable front-ends the hierarchical
 * sampler template (VariationSampler::sampleWithDieToDraws) consumes
 * its randomness through. Both expose the same two draws:
 *
 *   truncatedZ() -- a standard normal rejected to |z| <= kSigmaCut,
 *                   one per non-degenerate process-parameter draw;
 *   gumbel()     -- the worst-cell extreme draw -ln(-ln u),
 *                   u ~ U[1e-12, 1), one per row group.
 *
 * ScalarNormalDraws pulls each deviate from the Rng on demand
 * (bitwise the legacy order); BlockNormalDraws replays prefilled
 * blocks in the same logical order.
 */

/** On-demand scalar draw engine: one deviate per call, straight from
 *  the Rng in the legacy order. */
struct ScalarNormalDraws
{
    Rng &rng;
    const NormalSource &source;

    double truncatedZ()
    {
        double z;
        source.fillTruncatedNormals(rng, &z, 1);
        return z;
    }

    double gumbel()
    {
        const double u = rng.uniform(1e-12, 1.0);
        return -std::log(-std::log(u));
    }
};

/** Prefilled block draw engine: pointer-bumps over truncated-z and
 *  gumbel blocks the SIMD front-end filled up front. The caller owns
 *  the blocks and guarantees they hold at least as many deviates as
 *  the sampler will consume (VariationSampler::chipDrawCounts). */
struct BlockNormalDraws
{
    const double *truncatedZs;
    const double *gumbels;

    double truncatedZ() { return *truncatedZs++; }
    double gumbel() { return *gumbels++; }
};

} // namespace yac

#endif // YAC_UTIL_NORMAL_SOURCE_HH
