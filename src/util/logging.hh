/**
 * @file
 * Minimal logging helpers in the gem5 idiom.
 *
 * panic()  -- an internal invariant was broken (a yac bug); aborts.
 * fatal()  -- the user asked for something impossible (bad config);
 *             exits with status 1.
 * warn()   -- something works, but not as well as it should.
 * inform() -- status information, no connotation of a problem.
 */

#ifndef YAC_UTIL_LOGGING_HH
#define YAC_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace yac
{

/** Terminate with an internal-error message (a yac bug). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with a user-error message (bad configuration/arguments). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

namespace detail
{

/** Fold a list of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace yac

#define yac_panic(...) \
    ::yac::panicImpl(__FILE__, __LINE__, ::yac::detail::concat(__VA_ARGS__))
#define yac_fatal(...) \
    ::yac::fatalImpl(__FILE__, __LINE__, ::yac::detail::concat(__VA_ARGS__))
#define yac_warn(...) ::yac::warnImpl(::yac::detail::concat(__VA_ARGS__))
#define yac_inform(...) ::yac::informImpl(::yac::detail::concat(__VA_ARGS__))

/** Panic when an invariant does not hold. */
#define yac_assert(cond, ...)                                          \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::yac::panicImpl(__FILE__, __LINE__,                       \
                ::yac::detail::concat("assertion '" #cond "' failed: ",\
                                      ##__VA_ARGS__));                 \
        }                                                              \
    } while (0)

#endif // YAC_UTIL_LOGGING_HH
