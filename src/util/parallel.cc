#include "util/parallel.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/trace.hh"
#include "util/logging.hh"

namespace yac
{
namespace parallel
{

namespace
{

/** Set while a thread executes a chunk body; nested loops go serial. */
thread_local bool tls_in_parallel = false;

/**
 * Run one chunk body under a trace span, so campaign fan-outs show
 * per-thread chunk attribution in the trace viewer. Inert (no clock,
 * no allocation) when tracing is off.
 */
void
runChunk(const ChunkBody &body, std::size_t chunk, std::size_t begin,
         std::size_t end)
{
    trace::Span span("chunk", "parallel");
    span.arg("chunk", std::int64_t(chunk))
        .arg("begin", std::int64_t(begin))
        .arg("end", std::int64_t(end));
    body(chunk, begin, end);
}

/** Execute every chunk in order on the calling thread. */
void
runSerial(std::size_t n, std::size_t chunk_size, const ChunkBody &body)
{
    std::size_t chunk = 0;
    for (std::size_t begin = 0; begin < n; begin += chunk_size, ++chunk)
        runChunk(body, chunk, begin, std::min(n, begin + chunk_size));
}

/**
 * A persistent pool of worker threads executing one chunked loop at
 * a time. The calling thread participates in the loop, so a pool of
 * size T spawns T-1 workers. All job state lives under one mutex;
 * chunk claiming is a mutex-guarded counter (chunks are coarse, so
 * the lock is uncontended relative to the work).
 */
class ThreadPool
{
  public:
    explicit ThreadPool(std::size_t num_threads)
        : threads_(std::max<std::size_t>(1, num_threads))
    {
        workers_.reserve(threads_ - 1);
        for (std::size_t i = 0; i + 1 < threads_; ++i) {
            workers_.emplace_back([this, i] {
                trace::setThreadName("worker-" + std::to_string(i + 1));
                workerLoop();
            });
        }
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }

    std::size_t threadCount() const { return threads_; }

    void
    forChunks(std::size_t n, std::size_t chunk_size,
              const ChunkBody &body)
    {
        // One loop at a time; concurrent callers queue up here.
        std::lock_guard<std::mutex> call_lock(callMutex_);
        std::unique_lock<std::mutex> lock(mutex_);
        body_ = &body;
        jobN_ = n;
        jobChunkSize_ = chunk_size;
        numChunks_ = chunkCount(n, chunk_size);
        nextChunk_ = 0;
        chunksDone_ = 0;
        error_ = nullptr;
        wake_.notify_all();
        drain(lock);
        done_.wait(lock, [this] { return chunksDone_ == numChunks_; });
        body_ = nullptr;
        if (error_)
            std::rethrow_exception(error_);
    }

  private:
    /** Claim and run chunks until none remain. @p lock is held. */
    void
    drain(std::unique_lock<std::mutex> &lock)
    {
        while (nextChunk_ < numChunks_) {
            const std::size_t chunk = nextChunk_++;
            const ChunkBody *body = body_;
            const std::size_t begin = chunk * jobChunkSize_;
            const std::size_t end =
                std::min(jobN_, begin + jobChunkSize_);
            lock.unlock();
            tls_in_parallel = true;
            try {
                runChunk(*body, chunk, begin, end);
            } catch (...) {
                std::lock_guard<std::mutex> elock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
            tls_in_parallel = false;
            lock.lock();
            if (++chunksDone_ == numChunks_)
                done_.notify_all();
        }
    }

    void
    workerLoop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            wake_.wait(lock, [this] {
                return stop_ || nextChunk_ < numChunks_;
            });
            if (stop_)
                return;
            drain(lock);
        }
    }

    std::size_t threads_;
    std::vector<std::thread> workers_;

    std::mutex callMutex_; //!< serializes whole loops
    std::mutex mutex_;     //!< protects all job state below
    std::condition_variable wake_; //!< workers: a job arrived
    std::condition_variable done_; //!< caller: all chunks finished

    const ChunkBody *body_ = nullptr;
    std::size_t jobN_ = 0;
    std::size_t jobChunkSize_ = 1;
    std::size_t numChunks_ = 0;
    std::size_t nextChunk_ = 0;
    std::size_t chunksDone_ = 0;
    std::exception_ptr error_;
    bool stop_ = false;
};

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
std::size_t g_requested = 0; // 0 = automatic

std::size_t
autoThreads()
{
    if (const char *env = std::getenv("YAC_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<std::size_t>(v);
        yac_warn("ignoring invalid YAC_THREADS='", env,
                 "' (want a positive integer)");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool) {
        g_pool = std::make_unique<ThreadPool>(
            g_requested > 0 ? g_requested : autoThreads());
    }
    return *g_pool;
}

} // namespace

std::size_t
chunkCount(std::size_t n, std::size_t chunk_size)
{
    yac_assert(chunk_size > 0, "chunk size must be positive");
    return (n + chunk_size - 1) / chunk_size;
}

std::size_t
threads()
{
    return globalPool().threadCount();
}

void
setThreads(std::size_t n)
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_requested = n;
    g_pool.reset(); // rebuilt lazily at the new size
}

void
forChunks(std::size_t n, std::size_t chunk_size, const ChunkBody &body)
{
    if (n == 0) {
        yac_assert(chunk_size > 0, "chunk size must be positive");
        return;
    }
    if (tls_in_parallel || chunkCount(n, chunk_size) == 1) {
        runSerial(n, chunk_size, body);
        return;
    }
    ThreadPool &pool = globalPool();
    if (pool.threadCount() == 1) {
        runSerial(n, chunk_size, body);
        return;
    }
    pool.forChunks(n, chunk_size, body);
}

void
forEach(std::size_t n, const std::function<void(std::size_t)> &body)
{
    forChunks(n, 1,
              [&body](std::size_t, std::size_t begin, std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i)
                      body(i);
              });
}

} // namespace parallel
} // namespace yac
