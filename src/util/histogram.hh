/**
 * @file
 * Fixed-bin histogram used for distribution reporting (for example the
 * latency/leakage scatter summaries behind Figure 8).
 */

#ifndef YAC_UTIL_HISTOGRAM_HH
#define YAC_UTIL_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

namespace yac
{

/**
 * Equal-width histogram over [lo, hi) with underflow/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first regular bin.
     * @param hi Upper edge of the last regular bin.
     * @param bins Number of regular bins. @pre bins > 0, hi > lo
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Count a sample. Values outside [lo, hi) land in under/overflow. */
    void add(double x);

    std::size_t numBins() const { return counts_.size(); }
    std::size_t count(std::size_t bin) const { return counts_.at(bin); }
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }
    std::size_t total() const { return total_; }

    /** Centre of a regular bin. */
    double binCenter(std::size_t bin) const;

    /** Lower edge of a regular bin. */
    double binLow(std::size_t bin) const;

    /**
     * Render a simple ASCII bar chart, one line per bin, with bars
     * scaled so the fullest bin has @p width characters.
     */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    double binWidth_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

} // namespace yac

#endif // YAC_UTIL_HISTOGRAM_HH
