#include "util/histogram.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace yac
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), binWidth_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    yac_assert(bins > 0, "histogram needs at least one bin");
    yac_assert(hi > lo, "histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto bin = static_cast<std::size_t>((x - lo_) / binWidth_);
    bin = std::min(bin, counts_.size() - 1);
    ++counts_[bin];
}

double
Histogram::binCenter(std::size_t bin) const
{
    return lo_ + (static_cast<double>(bin) + 0.5) * binWidth_;
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo_ + static_cast<double>(bin) * binWidth_;
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t peak = 1;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);

    std::string out;
    char line[160];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar_len = static_cast<std::size_t>(
            std::llround(static_cast<double>(counts_[i] * width) /
                         static_cast<double>(peak)));
        std::snprintf(line, sizeof(line), "%10.4g | %-6zu ",
                      binCenter(i), counts_[i]);
        out += line;
        out.append(bar_len, '#');
        out += '\n';
    }
    if (underflow_ > 0)
        out += "underflow: " + std::to_string(underflow_) + "\n";
    if (overflow_ > 0)
        out += "overflow: " + std::to_string(overflow_) + "\n";
    return out;
}

} // namespace yac
