#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace yac
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    yac_assert(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    yac_assert(cells.size() == headers_.size(),
               "row has ", cells.size(), " cells, expected ",
               headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.push_back({kSeparatorTag});
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparatorTag)
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto render_line = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            line += ' ';
            line += cells[c];
            line.append(widths[c] - cells[c].size(), ' ');
            line += " |";
        }
        return line + "\n";
    };
    auto render_rule = [&]() {
        std::string line = "+";
        for (std::size_t w : widths) {
            line.append(w + 2, '-');
            line += '+';
        }
        return line + "\n";
    };

    std::string out;
    if (!title_.empty())
        out += title_ + "\n";
    out += render_rule();
    out += render_line(headers_);
    out += render_rule();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparatorTag)
            out += render_rule();
        else
            out += render_line(row);
    }
    out += render_rule();
    return out;
}

void
TextTable::print() const
{
    const std::string text = render();
    std::fwrite(text.data(), 1, text.size(), stdout);
}

std::string
TextTable::num(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
TextTable::num(long long value)
{
    return std::to_string(value);
}

std::string
TextTable::percent(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

} // namespace yac
