#include "util/options.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/vecmath.hh"

namespace yac
{

namespace
{

std::uint64_t
parseUnsigned(const std::string &name, const std::string &value,
              std::uint64_t min)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || v < min) {
        yac_fatal("--", name, " wants an integer >= ", min, ", got '",
                  value, "'");
    }
    return v;
}

double
parseDouble(const std::string &name, const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || !std::isfinite(v))
        yac_fatal("--", name, " wants a finite number, got '", value,
                  "'");
    return v;
}

SamplingMode
parseSamplingMode(const std::string &flag, const std::string &value)
{
    if (value == "naive")
        return SamplingMode::Naive;
    if (value == "tilted")
        return SamplingMode::Tilted;
    yac_fatal("--", flag, " wants naive or tilted, got '", value, "'");
}

CpiMode
parseCpiMode(const std::string &flag, const std::string &value)
{
    if (value == "sim")
        return CpiMode::Sim;
    if (value == "surrogate")
        return CpiMode::Surrogate;
    if (value == "auto")
        return CpiMode::Auto;
    yac_fatal("--", flag, " wants sim, surrogate or auto, got '",
              value, "'");
}

/**
 * Apply one --engine value: comma-separated key=value pairs. Parsing
 * stays inline in this translation unit (string compares plus the
 * vecmath mode parser) so yac_util never calls into yac_variation.
 */
void
applyEngineSpec(EngineSpec &engine, const std::string &value)
{
    std::size_t pos = 0;
    while (pos <= value.size()) {
        std::size_t comma = value.find(',', pos);
        if (comma == std::string::npos)
            comma = value.size();
        const std::string pair = value.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty())
            continue;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
            yac_fatal("--engine wants key=value pairs, got '", pair,
                      "'");
        const std::string key = pair.substr(0, eq);
        const std::string val = pair.substr(eq + 1);
        if (key == "simd") {
            engine.simd = vecmath::simdModeFromName(val);
        } else if (key == "sampling") {
            engine.sampling.mode = parseSamplingMode("engine", val);
        } else if (key == "tilt") {
            engine.sampling.tilt = parseDouble("engine", val);
        } else if (key == "sigma-scale") {
            engine.sampling.sigmaScale = parseDouble("engine", val);
        } else if (key == "cpi") {
            engine.cpi = parseCpiMode("engine", val);
        } else if (key == "surrogate") {
            if (val.empty())
                yac_fatal("--engine surrogate= wants a table path");
            engine.surrogate = val;
        } else {
            yac_fatal("--engine key must be simd, sampling, tilt, "
                      "sigma-scale, cpi or surrogate, got '", key,
                      "'");
        }
    }
}

} // namespace

OptionParser::OptionParser(std::string usage) : usage_(std::move(usage))
{
}

void
OptionParser::addUnsigned(const std::string &name,
                          const std::string &help,
                          std::function<void(std::uint64_t)> store,
                          std::uint64_t min)
{
    add(name, help,
        [name, store = std::move(store), min](const std::string &value) {
            store(parseUnsigned(name, value, min));
        });
}

void
OptionParser::add(const std::string &name, const std::string &help,
                  std::string *out, bool allow_empty)
{
    add(name, help, [name, out, allow_empty](const std::string &value) {
        if (value.empty() && !allow_empty)
            yac_fatal("--", name, " wants a non-empty value");
        *out = value;
    });
}

void
OptionParser::add(const std::string &name, const std::string &help,
                  double *out)
{
    add(name, help, [name, out](const std::string &value) {
        *out = parseDouble(name, value);
    });
}

void
OptionParser::add(const std::string &name, const std::string &help,
                  std::function<void(const std::string &value)> consume)
{
    yac_assert(find(name) == nullptr, "duplicate flag --", name);
    flags_.push_back({name, help, std::move(consume)});
}

const OptionParser::Flag *
OptionParser::find(const std::string &name) const
{
    for (const Flag &f : flags_) {
        if (f.name == name)
            return &f;
    }
    return nullptr;
}

void
OptionParser::printHelp() const
{
    std::printf("usage: %s\n\noptions:\n", usage_.c_str());
    for (const Flag &f : flags_) {
        std::printf("  --%-12s %s\n", f.name.c_str(), f.help.c_str());
    }
    std::printf("  --%-12s %s\n", "help", "show this message");
}

void
OptionParser::parse(int argc, char **argv) const
{
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    parse(args);
}

void
OptionParser::parse(const std::vector<std::string> &args) const
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--help" || arg == "-h") {
            printHelp();
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            yac_fatal("unknown argument '", arg, "' (try --help)");

        // --name=value or --name value.
        const std::size_t eq = arg.find('=');
        const std::string name = arg.substr(2, eq - 2);
        const Flag *flag = find(name);
        if (flag == nullptr)
            yac_fatal("unknown flag '--", name, "' (try --help)");
        std::string value;
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
        } else {
            if (i + 1 >= args.size())
                yac_fatal("--", name, " wants a value");
            value = args[++i];
        }
        flag->consume(value);
    }
}

void
addCampaignOptions(OptionParser &parser, CampaignOptions &opts)
{
    parser.add("chips", "campaign population size (default 2000)",
               &opts.chips, 2);
    parser.add("threads",
               "worker threads; 0 = automatic (default YAC_THREADS "
               "or hardware)",
               &opts.threads);
    parser.add("seed", "campaign RNG seed (default 2006)", &opts.seed);
    parser.add("out-dir", "directory for CSV artifacts (default out)",
               &opts.outDir);
    parser.add("trace-out",
               "write a Chrome Trace Event JSON file "
               "(load in chrome://tracing)",
               &opts.traceOut);
    parser.add("sim-cache",
               "persist the simulation memo cache to FILE "
               "(loaded on start, saved on exit)",
               &opts.simCache);
    addEngineOptions(parser, opts.engine);
}

void
addEngineOptions(OptionParser &parser, EngineSpec &engine)
{
    parser.add("engine",
               "numeric engine: comma-separated key=value pairs "
               "(simd=off|auto|avx2, sampling=naive|tilted, tilt=T, "
               "sigma-scale=S, cpi=sim|surrogate|auto, "
               "surrogate=TABLE)",
               [&engine](const std::string &value) {
                   applyEngineSpec(engine, value);
               });
    // Legacy alias spellings of the same knobs; values land in the
    // same EngineSpec fields and are validated eagerly so a typo
    // dies at the flag, not mid-campaign.
    parser.add("sampling",
               "sampling plan: naive (default) or tilted "
               "(importance sampling); alias of --engine sampling=",
               [&engine](const std::string &value) {
                   engine.sampling.mode =
                       parseSamplingMode("sampling", value);
               });
    parser.add("tilt",
               "tilted only: die-mean shift toward the slow corner "
               "in sigma units (default 2.0); alias of --engine "
               "tilt=",
               &engine.sampling.tilt);
    parser.add("sigma-scale",
               "tilted only: die-sigma multiplier (default 1.0); "
               "alias of --engine sigma-scale=",
               &engine.sampling.sigmaScale);
    parser.add("simd",
               "SIMD kernels: off (scalar bitwise reference, "
               "default), auto (AVX2 when available) or avx2 "
               "(force; fatal without AVX2+FMA); alias of --engine "
               "simd=",
               [&engine](const std::string &value) {
                   engine.simd = vecmath::simdModeFromName(value);
               });
    parser.add("cpi",
               "CPI pricing: sim (exact simulator, default), "
               "surrogate (fitted coefficient table) or auto "
               "(surrogate inside its envelope, sim outside); alias "
               "of --engine cpi=",
               [&engine](const std::string &value) {
                   engine.cpi = parseCpiMode("cpi", value);
               });
    parser.add("surrogate",
               "surrogate coefficient-table path for "
               "--cpi=surrogate|auto; alias of --engine surrogate=",
               &engine.surrogate);
}

CampaignOptions
parseCampaignOptions(int argc, char **argv)
{
    CampaignOptions opts;
    OptionParser parser(
        std::string(argc > 0 ? argv[0] : "bench") + " [options]");
    addCampaignOptions(parser, opts);
    parser.parse(argc, argv);
    if (opts.threads != 0)
        parallel::setThreads(opts.threads);
    return opts;
}

} // namespace yac
