/**
 * @file
 * Self-contained 4-wide AVX2/FMA vector math kernels (exp, log, pow
 * over packed doubles) plus the runtime SIMD dispatch machinery that
 * selects between them and scalar libm.
 *
 * Why hand-rolled kernels: vectorized transcendentals from vendor
 * libraries (SVML, libmvec) are not universally available, not
 * bit-stable across versions, and would add an external dependency.
 * These kernels are ~150 lines of documented polynomial math with an
 * explicit error budget, and they are *tolerance-tested* against
 * scalar libm (tests/prop_vecmath.cc) -- never assumed bitwise equal.
 *
 * Error budget (ulps versus the host libm, which is correctly rounded
 * to within ~0.5 ulp):
 *
 *  - exp4: <= kExpMaxUlp over the normal result range
 *    [-708.4, 709.8]; results that underflow into the denormal range
 *    are produced by two-step scaling and may lose up to ~1 ulp more
 *    (of the denormal's reduced precision).
 *  - log4: <= kLogMaxUlp for every positive finite input, including
 *    denormals (which are pre-scaled by 2^54). The fdlibm-style
 *    reduction keeps the e*ln2 + log(m) cancellation exact via
 *    compensated (hi/lo) accumulation.
 *  - pow4: <= kPowMaxUlp for x > 0 and |y * ln x| <= 700 (i.e. every
 *    finite-result case). pow is computed as exp(y * log x) with the
 *    log carried in a compensated hi/lo pair, so the argument error
 *    that the final exp amplifies stays ~2^-57 * |y ln x|.
 *  - sincos4: <= kSinCosMaxUlp for |x| <= kSinCosMaxArg. Argument
 *    reduction is the fdlibm three-step Cody-Waite chain (pi/2 split
 *    into 33-bit chunks, reduced argument carried as a hi/lo pair),
 *    exact for |n| < 2^20 quadrants, so accuracy holds even right at
 *    the sin/cos roots where cancellation is total. Outside the
 *    domain (and for +/-inf, NaN) both results are NaN -- the
 *    campaign only ever needs theta in [0, 2*pi).
 *  - bmRadius4: sqrt(-2 ln u) <= kBmRadiusMaxUlp for u in (0, 1].
 *    The ln comes from log4Ext as a compensated hi/lo pair, -2x is
 *    exact, and sqrt halves the incoming relative error, so the
 *    bound holds uniformly as u -> 1 (radius -> 0). u == 0 -> +inf,
 *    u < 0 -> NaN, u > 1 -> NaN (negative radicand), NaN propagates.
 *
 * The kernels follow IEEE special-case conventions where the campaign
 * hot path can reach them (exp(-inf)=0, exp(inf)=inf, log(0)=-inf,
 * log(x<0)=NaN, NaN propagates); pow is only specified for x > 0.
 *
 * Dispatch: nothing in this header requires building the whole
 * translation unit with -mavx2; the vector kernels carry
 * per-function target("avx2,fma") attributes and are only *called*
 * after a runtime CPUID check (hostHasAvx2Fma). resolveSimdKernel()
 * maps a user-facing SimdMode (--simd=off|auto|avx2) to the kernel
 * set to use, fails fast when avx2 is forced on an unsupported host,
 * and records the decision in the trace::Metrics registry
 * (simd_dispatch_avx2 / simd_dispatch_scalar counters).
 */

#ifndef YAC_UTIL_VECMATH_HH
#define YAC_UTIL_VECMATH_HH

#include <cstddef>
#include <string>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define YAC_VECMATH_X86 1
#include <immintrin.h>
/** Per-function AVX2+FMA codegen; the TU itself needs no -mavx2. */
#define YAC_SIMD_TARGET __attribute__((target("avx2,fma")))
#else
#define YAC_VECMATH_X86 0
#define YAC_SIMD_TARGET
#endif

namespace yac
{
namespace vecmath
{

/** User-facing SIMD selection (--simd=off|auto|avx2). */
enum class SimdMode
{
    Off,  //!< scalar bitwise-reference path, the default
    Auto, //!< AVX2 kernels when the host supports them, else scalar
    Avx2, //!< force AVX2 kernels; fatal on unsupported hosts
};

/** The kernel set a campaign actually runs with. */
enum class SimdKernel
{
    Scalar, //!< scalar libm, bitwise-identical reference
    Avx2,   //!< 4-wide AVX2/FMA polynomial kernels
};

/** Documented maximum error of the vector kernels [ulps vs libm]. */
constexpr int kExpMaxUlp = 4;
constexpr int kLogMaxUlp = 4;
constexpr int kPowMaxUlp = 16;
constexpr int kSinCosMaxUlp = 4;
constexpr int kBmRadiusMaxUlp = 4;

/** sincos4 domain bound: |x| <= kSinCosMaxArg keeps the quadrant
 *  count below 2^20, where the 3 x 33-bit Cody-Waite products are
 *  exact. Box-Muller only needs theta in [0, 2*pi). */
constexpr double kSinCosMaxArg = 1.0e6;

/** Spelling used by --simd and the BENCH/trace surfaces. */
const char *simdModeName(SimdMode mode);
const char *simdKernelName(SimdKernel kernel);

/** Parse an --simd value; fatal on anything but off|auto|avx2. */
SimdMode simdModeFromName(const std::string &name);

/** True when this CPU executes AVX2 and FMA instructions. */
bool hostHasAvx2Fma();

/**
 * Resolve the kernel set for @p mode on this host. Off always yields
 * Scalar; Auto picks Avx2 exactly when hostHasAvx2Fma(); Avx2
 * yac_fatals when the host cannot execute it (a silently-scalar
 * "avx2" run would invalidate any perf comparison). For Auto and
 * Avx2 the decision is recorded in the trace::Metrics registry as a
 * simd_dispatch_avx2 / simd_dispatch_scalar counter tick, so every
 * BENCH line and trace carries the dispatch outcome.
 */
SimdKernel resolveSimdKernel(SimdMode mode);

/** Testable core of resolveSimdKernel: injected host capability, no
 *  metrics side effects. */
SimdKernel resolveSimdKernel(SimdMode mode, bool host_has_avx2_fma);

/**
 * Array forms of the vector kernels: out[i] = exp(x[i]) (resp. log,
 * pow(x[i], y)). On an AVX2+FMA host these run the 4-wide kernels
 * (the tail is processed through the same kernel via a padded
 * vector, so every element sees identical code); elsewhere they fall
 * back to scalar libm. In-place (out == x) is allowed. These are the
 * surfaces the ulp suite tests; the batch evaluator uses the inline
 * __m256d kernels below directly.
 */
void expArray(const double *x, double *out, std::size_t n);
void logArray(const double *x, double *out, std::size_t n);
void powArray(const double *x, double y, double *out, std::size_t n);

/** sin_out[i] = sin(x[i]), cos_out[i] = cos(x[i]) for
 *  |x[i]| <= kSinCosMaxArg (NaN outside). Neither output may alias
 *  the other; either may alias x. */
void sincosArray(const double *x, double *sin_out, double *cos_out,
                 std::size_t n);

/** out[i] = sqrt(-2 ln u[i]), the Box-Muller radius, for u in
 *  (0, 1]. In-place (out == u) is allowed. */
void bmRadiusArray(const double *u, double *out, std::size_t n);

#if YAC_VECMATH_X86

namespace detail
{

/** exp(h + l) for |l| << |h|: shared core of exp4 and pow4. The
 *  correction @p l is folded into the reduced argument before the
 *  polynomial, where it costs one add instead of a multiply at the
 *  end. Handles overflow (-> inf) and graceful underflow through the
 *  denormal range (-> 0) via two-step scaling. */
YAC_SIMD_TARGET inline __m256d
exp4Core(__m256d h, __m256d l)
{
    const __m256d log2e = _mm256_set1_pd(1.4426950408889634074);
    // ln2 split with 27 trailing zero bits: k * ln2_hi is exact for
    // |k| < 2^26, far beyond the +/-1100 range k can take here.
    const __m256d ln2_hi = _mm256_set1_pd(6.93147180369123816490e-01);
    const __m256d ln2_lo = _mm256_set1_pd(1.90821492927058770002e-10);

    __m256d k = _mm256_round_pd(
        _mm256_mul_pd(h, log2e),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    // Clamp k so the exponent arithmetic below stays in range; the
    // result saturates to inf / 0 through the scaling regardless.
    k = _mm256_max_pd(k, _mm256_set1_pd(-1100.0));
    k = _mm256_min_pd(k, _mm256_set1_pd(1100.0));

    __m256d r = _mm256_fnmadd_pd(k, ln2_hi, h);
    r = _mm256_fnmadd_pd(k, ln2_lo, r);
    r = _mm256_add_pd(r, l);

    // exp(r) on [-ln2/2, ln2/2] via a degree-13 Taylor polynomial:
    // the tail term r^14/14! < 4.2e-18 relative, below double
    // rounding. Horner with FMA.
    __m256d p = _mm256_set1_pd(1.6059043836821614599e-10); // 1/13!
    const double kInvFact[] = {
        2.0876756987868098979e-09, // 1/12!
        2.5052108385441718775e-08, // 1/11!
        2.7557319223985890653e-07, // 1/10!
        2.7557319223985892511e-06, // 1/9!
        2.4801587301587301566e-05, // 1/8!
        1.9841269841269841253e-04, // 1/7!
        1.3888888888888889419e-03, // 1/6!
        8.3333333333333332177e-03, // 1/5!
        4.1666666666666664354e-02, // 1/4!
        1.6666666666666665741e-01, // 1/3!
        5.0000000000000000000e-01, // 1/2!
        1.0,                       // 1/1!
        1.0,                       // 1/0!
    };
    for (double c : kInvFact)
        p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(c));

    // Scale by 2^k in two steps, k = k1 + k2 with both factors
    // representable: k1 in [-1021, 1023], k2 in [-79, 77]. One-step
    // scaling could not reach denormal results (2^k itself would
    // underflow); two steps round once more but only in the
    // denormal range, which the error budget documents.
    __m256d k1 = _mm256_max_pd(_mm256_min_pd(k, _mm256_set1_pd(1023.0)),
                               _mm256_set1_pd(-1021.0));
    __m256d k2 = _mm256_sub_pd(k, k1);
    const __m256i bias = _mm256_set1_epi64x(1023);
    __m256i i1 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(k1));
    __m256i i2 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(k2));
    __m256d s1 = _mm256_castsi256_pd(
        _mm256_slli_epi64(_mm256_add_epi64(i1, bias), 52));
    __m256d s2 = _mm256_castsi256_pd(
        _mm256_slli_epi64(_mm256_add_epi64(i2, bias), 52));
    __m256d result = _mm256_mul_pd(_mm256_mul_pd(p, s1), s2);

    // Below the denormal cutoff the polynomial/scaling path would
    // produce garbage from the clamped k; force the IEEE limit 0.
    // (exp(-746) < 2^-1075 rounds to +0.) NaN stays NaN because the
    // comparison is false for unordered operands.
    const __m256d zero_cut = _mm256_set1_pd(-746.0);
    __m256d under = _mm256_cmp_pd(h, zero_cut, _CMP_LT_OQ);
    result = _mm256_blendv_pd(result, _mm256_setzero_pd(), under);
    return result;
}

/** Compensated natural log: *hi + *lo ~= ln(x) to ~2^-57 relative,
 *  for x positive, finite, not NaN (callers blend specials). The
 *  fdlibm reduction x = 2^e * m, m in [sqrt(1/2), sqrt(2)), with the
 *  three cancellation-sensitive accumulations (e*ln2_hi + f, - f^2/2)
 *  carried exactly via TwoSum / an FMA residual. */
YAC_SIMD_TARGET inline void
log4Ext(__m256d x, __m256d *hi, __m256d *lo)
{
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d two54 = _mm256_set1_pd(0x1p54);
    const __m256d dbl_min = _mm256_set1_pd(2.2250738585072014e-308);

    // Pre-scale denormals into the normal range: x < DBL_MIN (and
    // x > 0, the caller's contract) -> multiply by 2^54, e -= 54.
    __m256d tiny = _mm256_cmp_pd(x, dbl_min, _CMP_LT_OQ);
    __m256d xs = _mm256_blendv_pd(x, _mm256_mul_pd(x, two54), tiny);
    __m256d e_adj =
        _mm256_blendv_pd(_mm256_setzero_pd(), _mm256_set1_pd(-54.0),
                         tiny);

    __m256i bits = _mm256_castpd_si256(xs);
    __m256i e_raw = _mm256_srli_epi64(bits, 52);
    // Biased exponents are < 2^11; gather the low dword of each lane
    // and convert to double in one cvtepi32_pd.
    const __m256i pick_lo =
        _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
    __m128i e32 = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(e_raw, pick_lo));
    __m256d e = _mm256_cvtepi32_pd(e32);
    e = _mm256_add_pd(e, _mm256_set1_pd(-1023.0));
    e = _mm256_add_pd(e, e_adj);

    const __m256i mant_mask =
        _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL);
    const __m256i one_bits =
        _mm256_set1_epi64x(0x3FF0000000000000LL);
    __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
        _mm256_and_si256(bits, mant_mask), one_bits));

    // Fold m into [sqrt(1/2), sqrt(2)) so f = m - 1 stays small.
    const __m256d sqrt2 = _mm256_set1_pd(1.4142135623730951);
    __m256d fold = _mm256_cmp_pd(m, sqrt2, _CMP_GE_OQ);
    m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)),
                         fold);
    e = _mm256_add_pd(e, _mm256_blendv_pd(_mm256_setzero_pd(), one,
                                          fold));

    __m256d f = _mm256_sub_pd(m, one);
    __m256d s =
        _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
    __m256d z = _mm256_mul_pd(s, s);

    // fdlibm minimax: log(1+f) = f - f^2/2 + s*(f^2/2 + R(z)),
    // R(z) = z * (Lg1 + z*(Lg2 + ... z*Lg7)), |error| < 2^-58.45.
    __m256d R = _mm256_set1_pd(1.479819860511658591e-01); // Lg7
    const double kLg[] = {
        1.531383769920937332e-01, // Lg6
        1.818357216161805012e-01, // Lg5
        2.222219843214978396e-01, // Lg4
        2.857142874366239149e-01, // Lg3
        3.999999999940941908e-01, // Lg2
        6.666666666666735130e-01, // Lg1
    };
    for (double c : kLg)
        R = _mm256_fmadd_pd(R, z, _mm256_set1_pd(c));
    R = _mm256_mul_pd(R, z);

    __m256d half_f = _mm256_mul_pd(_mm256_set1_pd(0.5), f);
    __m256d hfsq = _mm256_mul_pd(half_f, f);
    // Exact residual of the hfsq rounding.
    __m256d hfsq_err = _mm256_fmsub_pd(half_f, f, hfsq);
    __m256d q = _mm256_mul_pd(s, _mm256_add_pd(hfsq, R));

    // ln2 split with 20+ trailing zeros: e * ln2_hi is exact.
    const __m256d ln2_hi = _mm256_set1_pd(6.93147180369123816490e-01);
    const __m256d ln2_lo = _mm256_set1_pd(1.90821492927058770002e-10);
    __m256d A = _mm256_mul_pd(e, ln2_hi);

    // TwoSum(A, f): branchless exact sum, |A| and |f| unordered.
    __m256d h1 = _mm256_add_pd(A, f);
    __m256d bb = _mm256_sub_pd(h1, A);
    __m256d l1 = _mm256_add_pd(
        _mm256_sub_pd(A, _mm256_sub_pd(h1, bb)),
        _mm256_sub_pd(f, bb));

    // TwoSum(h1, -hfsq).
    __m256d nh = _mm256_sub_pd(_mm256_setzero_pd(), hfsq);
    __m256d h2 = _mm256_add_pd(h1, nh);
    __m256d bb2 = _mm256_sub_pd(h2, h1);
    __m256d l2 = _mm256_add_pd(
        _mm256_sub_pd(h1, _mm256_sub_pd(h2, bb2)),
        _mm256_sub_pd(nh, bb2));

    __m256d low = _mm256_add_pd(l1, l2);
    low = _mm256_sub_pd(low, hfsq_err);
    low = _mm256_add_pd(low, q);
    low = _mm256_fmadd_pd(e, ln2_lo, low);

    *hi = h2;
    *lo = low;
}

} // namespace detail

/** 4-wide exp(x); see the file comment for the error budget. */
YAC_SIMD_TARGET inline __m256d
exp4(__m256d x)
{
    return detail::exp4Core(x, _mm256_setzero_pd());
}

/** 4-wide ln(x) with IEEE specials (log(0)=-inf, log(x<0)=NaN,
 *  log(inf)=inf, NaN propagates). */
YAC_SIMD_TARGET inline __m256d
log4(__m256d x)
{
    __m256d hi, lo;
    detail::log4Ext(x, &hi, &lo);
    __m256d result = _mm256_add_pd(hi, lo);

    const __m256d zero = _mm256_setzero_pd();
    const __m256d neg_inf =
        _mm256_set1_pd(-__builtin_huge_val());
    const __m256d nan = _mm256_set1_pd(__builtin_nan(""));
    // x == +inf falls through the reduction as a huge finite value;
    // restore inf. Then x == 0 -> -inf, x < 0 -> NaN, NaN -> NaN.
    __m256d is_inf = _mm256_cmp_pd(
        x, _mm256_set1_pd(__builtin_huge_val()), _CMP_EQ_OQ);
    result = _mm256_blendv_pd(result, x, is_inf);
    __m256d is_zero = _mm256_cmp_pd(x, zero, _CMP_EQ_OQ);
    result = _mm256_blendv_pd(result, neg_inf, is_zero);
    __m256d is_neg = _mm256_cmp_pd(x, zero, _CMP_LT_OQ);
    result = _mm256_blendv_pd(result, nan, is_neg);
    __m256d is_nan = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
    result = _mm256_blendv_pd(result, x, is_nan);
    return result;
}

/** 4-wide pow(x, y) = exp(y * ln x), specified for x > 0; the ln is
 *  carried as a compensated hi/lo pair so the final exp sees the
 *  product y*ln(x) to ~2^-57 relative. x == 0 and negative x follow
 *  the log4 specials through the exp (0^y -> 0 for y > 0, inf for
 *  y < 0; negative x -> NaN). */
YAC_SIMD_TARGET inline __m256d
pow4(__m256d x, __m256d y)
{
    __m256d hi, lo;
    detail::log4Ext(x, &hi, &lo);

    // Specials of ln(x) must survive the hi/lo product; reuse log4's
    // blend rules on the hi part (lo stays a finite correction).
    const __m256d zero = _mm256_setzero_pd();
    __m256d is_special = _mm256_or_pd(
        _mm256_cmp_pd(x, zero, _CMP_LE_OQ),
        _mm256_or_pd(
            _mm256_cmp_pd(x, _mm256_set1_pd(__builtin_huge_val()),
                          _CMP_EQ_OQ),
            _mm256_cmp_pd(x, x, _CMP_UNORD_Q)));
    hi = _mm256_blendv_pd(hi, log4(x), is_special);
    lo = _mm256_blendv_pd(lo, zero, is_special);

    __m256d t_hi = _mm256_mul_pd(y, hi);
    // Exact product residual + the lo correction.
    __m256d t_lo = _mm256_fmsub_pd(y, hi, t_hi);
    t_lo = _mm256_fmadd_pd(y, lo, t_lo);
    return detail::exp4Core(t_hi, t_lo);
}

namespace detail
{

/** fdlibm __kernel_sin on the reduced pair (y0, y1), |y0| <= pi/4:
 *  degree-13 odd minimax polynomial, |error| < 2^-57.4, with the
 *  reduction tail y1 folded in exactly where fdlibm does. */
YAC_SIMD_TARGET inline __m256d
kernelSin4(__m256d y0, __m256d y1)
{
    const __m256d S1 = _mm256_set1_pd(-1.66666666666666324348e-01);
    __m256d z = _mm256_mul_pd(y0, y0);
    __m256d v = _mm256_mul_pd(z, y0);
    __m256d r = _mm256_set1_pd(1.58969099521155010221e-10); // S6
    const double kS[] = {
        -2.50507602534068634195e-08, // S5
        2.75573137070700676789e-06,  // S4
        -1.98412698298579493134e-04, // S3
        8.33333333332248946124e-03,  // S2
    };
    for (double c : kS)
        r = _mm256_fmadd_pd(r, z, _mm256_set1_pd(c));
    // x - ((z*(0.5*y - v*r) - y) - v*S1), structured exactly as
    // fdlibm so the tail y1 enters at full precision.
    __m256d t = _mm256_fmsub_pd(
        _mm256_set1_pd(0.5), y1, _mm256_mul_pd(v, r));
    t = _mm256_sub_pd(_mm256_mul_pd(z, t), y1);
    t = _mm256_fnmadd_pd(v, S1, t);
    return _mm256_sub_pd(y0, t);
}

/** fdlibm/musl __kernel_cos on the reduced pair (y0, y1): even
 *  minimax polynomial with the 1 - z/2 head carried exactly via the
 *  branchless (1-w)-hz residual, |error| < 2^-57. */
YAC_SIMD_TARGET inline __m256d
kernelCos4(__m256d y0, __m256d y1)
{
    const __m256d one = _mm256_set1_pd(1.0);
    __m256d z = _mm256_mul_pd(y0, y0);
    __m256d r = _mm256_set1_pd(-1.13596475577881948265e-11); // C6
    const double kC[] = {
        2.08757232129817482790e-09,  // C5
        -2.75573143513906633035e-07, // C4
        2.48015872894767294178e-05,  // C3
        -1.38888888888741095749e-03, // C2
        4.16666666666666019037e-02,  // C1
    };
    for (double c : kC)
        r = _mm256_fmadd_pd(r, z, _mm256_set1_pd(c));
    r = _mm256_mul_pd(r, z);
    __m256d hz = _mm256_mul_pd(_mm256_set1_pd(0.5), z);
    __m256d w = _mm256_sub_pd(one, hz);
    // (1-w)-hz is the exact rounding error of w (hz < 0.31 < 1).
    __m256d tail = _mm256_sub_pd(_mm256_sub_pd(one, w), hz);
    tail = _mm256_add_pd(
        tail, _mm256_fmsub_pd(z, r, _mm256_mul_pd(y0, y1)));
    return _mm256_add_pd(w, tail);
}

} // namespace detail

/** 4-wide sincos: *sin_out = sin(x), *cos_out = cos(x) for
 *  |x| <= kSinCosMaxArg; NaN in both outside the domain and for
 *  +/-inf / NaN inputs. See the file comment for the error budget. */
YAC_SIMD_TARGET inline void
sincos4(__m256d x, __m256d *sin_out, __m256d *cos_out)
{
    // fdlibm split of pi/2 into 33-bit chunks: fn * pio2_{1,2,3} are
    // all exact for |fn| < 2^20 (33 + 20 bits), so three Cody-Waite
    // steps leave the reduced argument good to ~150 bits even under
    // total cancellation at multiples of pi/2.
    const __m256d invpio2 =
        _mm256_set1_pd(6.36619772367581382433e-01);
    const __m256d pio2_1 = _mm256_set1_pd(1.57079632673412561417e+00);
    const __m256d pio2_2 = _mm256_set1_pd(6.07710050630396597660e-11);
    const __m256d pio2_3 = _mm256_set1_pd(2.02226624871116645580e-21);
    const __m256d pio2_3t =
        _mm256_set1_pd(8.47842766036889956997e-32);

    __m256d fn = _mm256_round_pd(
        _mm256_mul_pd(x, invpio2),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);

    __m256d z = _mm256_fnmadd_pd(fn, pio2_1, x); // exact product
    __m256d t = z;
    __m256d w = _mm256_mul_pd(fn, pio2_2);
    z = _mm256_sub_pd(t, w);
    t = z;
    w = _mm256_mul_pd(fn, pio2_3);
    z = _mm256_sub_pd(t, w);
    w = _mm256_sub_pd(_mm256_mul_pd(fn, pio2_3t),
                      _mm256_sub_pd(_mm256_sub_pd(t, z), w));
    __m256d y0 = _mm256_sub_pd(z, w);
    __m256d y1 = _mm256_sub_pd(_mm256_sub_pd(z, y0), w);

    __m256d sin_r = detail::kernelSin4(y0, y1);
    __m256d cos_r = detail::kernelCos4(y0, y1);

    // Quadrant n = int(fn) & 3 (two's-complement & is mod-4 for
    // negative n too): sin swaps to cos on odd n and negates on
    // n & 2; cos swaps to sin on odd n and negates on bit0 ^ bit1.
    const __m256i one64 = _mm256_set1_epi64x(1);
    __m256i n = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(fn));
    __m256i b0 = _mm256_and_si256(n, one64);
    __m256i b1 = _mm256_and_si256(_mm256_srli_epi64(n, 1), one64);
    __m256d swap =
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(b0, one64));
    __m256d sin_neg =
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(b1, one64));
    __m256d cos_neg = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_xor_si256(b0, b1), one64));

    const __m256d sign = _mm256_set1_pd(-0.0);
    __m256d s = _mm256_blendv_pd(sin_r, cos_r, swap);
    __m256d c = _mm256_blendv_pd(cos_r, sin_r, swap);
    s = _mm256_xor_pd(s, _mm256_and_pd(sin_neg, sign));
    c = _mm256_xor_pd(c, _mm256_and_pd(cos_neg, sign));

    // Out-of-domain (|x| > kSinCosMaxArg, so also +/-inf) and NaN
    // inputs produce NaN in both outputs.
    const __m256d nan = _mm256_set1_pd(__builtin_nan(""));
    __m256d ax = _mm256_andnot_pd(sign, x);
    __m256d bad = _mm256_or_pd(
        _mm256_cmp_pd(ax, _mm256_set1_pd(kSinCosMaxArg), _CMP_GT_OQ),
        _mm256_cmp_pd(x, x, _CMP_UNORD_Q));
    *sin_out = _mm256_blendv_pd(s, nan, bad);
    *cos_out = _mm256_blendv_pd(c, nan, bad);
}

/** 4-wide Box-Muller radius sqrt(-2 ln u) for u in (0, 1]: the ln
 *  comes from log4Ext as a hi/lo pair, -2x is exact on the hi part
 *  and FMA-folded on the lo part, and the final sqrt halves the
 *  incoming relative error. u == 0 -> +inf, u < 0 -> NaN, u > 1 ->
 *  NaN (negative radicand), NaN propagates. */
YAC_SIMD_TARGET inline __m256d
bmRadius4(__m256d u)
{
    __m256d hi, lo;
    detail::log4Ext(u, &hi, &lo);
    __m256d s = _mm256_mul_pd(hi, _mm256_set1_pd(-2.0)); // exact
    s = _mm256_fnmadd_pd(_mm256_set1_pd(2.0), lo, s);
    __m256d r = _mm256_sqrt_pd(s);

    const __m256d zero = _mm256_setzero_pd();
    const __m256d inf = _mm256_set1_pd(__builtin_huge_val());
    const __m256d nan = _mm256_set1_pd(__builtin_nan(""));
    // log4Ext's contract is positive finite input; blend the
    // specials explicitly. u == +inf and u > 1 already fall out as
    // NaN via the negative radicand.
    __m256d is_zero = _mm256_cmp_pd(u, zero, _CMP_EQ_OQ);
    r = _mm256_blendv_pd(r, inf, is_zero);
    __m256d is_neg = _mm256_cmp_pd(u, zero, _CMP_LT_OQ);
    r = _mm256_blendv_pd(r, nan, is_neg);
    __m256d is_nan = _mm256_cmp_pd(u, u, _CMP_UNORD_Q);
    r = _mm256_blendv_pd(r, u, is_nan);
    return r;
}

#endif // YAC_VECMATH_X86

} // namespace vecmath
} // namespace yac

#endif // YAC_UTIL_VECMATH_HH
