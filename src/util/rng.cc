#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace yac
{

namespace
{

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
    // An all-zero state is the one forbidden state of xoshiro256++.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
        state_[0] = 1;
    }
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

Rng
Rng::split(std::uint64_t stream_id) const
{
    // Mix the current state with the stream id; do not advance *this.
    std::uint64_t s = state_[0] ^ rotl(state_[2], 17) ^
        (stream_id * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
    return Rng(splitMix64(s));
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    yac_assert(n > 0, "uniformInt needs a positive bound");
    // Debiased modulo (Lemire-style rejection).
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareNormal_;
    }
    double u1 = 0.0;
    // Avoid log(0).
    while (u1 == 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = radius * std::sin(theta);
    hasSpare_ = true;
    return radius * std::cos(theta);
}

double
Rng::normal(double mean, double sigma)
{
    return mean + sigma * normal();
}

double
Rng::truncatedNormal(double mean, double sigma, double cut)
{
    yac_assert(cut > 0.0, "truncation window must be positive");
    if (sigma == 0.0)
        return mean;
    for (;;) {
        const double z = normal();
        if (std::fabs(z) <= cut)
            return mean + sigma * z;
    }
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

} // namespace yac
