#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace yac
{

namespace
{

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    reseed(seed);
}

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
    // An all-zero state is the one forbidden state of xoshiro256++.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
        state_[0] = 1;
    }
    // The Box-Muller spare is observable state; a reseeded generator
    // must be indistinguishable from a freshly constructed one.
    hasSpare_ = false;
    spareNormal_ = 0.0;
}

Rng
Rng::split(std::uint64_t stream_id) const
{
    // Mix the current state with the stream id; do not advance *this.
    std::uint64_t s = state_[0] ^ rotl(state_[2], 17) ^
        (stream_id * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
    return Rng(splitMix64(s));
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    yac_assert(n > 0, "uniformInt needs a positive bound");
    // Debiased modulo (Lemire-style rejection).
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

} // namespace yac
