/**
 * @file
 * Shared command-line option parsing for benches, examples, and the
 * CLI. One parser, one flag vocabulary:
 *
 *   --chips=N --threads=N --seed=S --out-dir=D --trace-out=FILE
 *
 * Both `--flag=value` and `--flag value` spellings are accepted;
 * `--help`/`-h` prints the registered flags and exits. Unknown
 * arguments are fatal -- campaign tooling must never silently ignore
 * a typo'd knob.
 */

#ifndef YAC_UTIL_OPTIONS_HH
#define YAC_UTIL_OPTIONS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "variation/engine_spec.hh"

namespace yac
{

/** The campaign knobs every yield binary accepts. */
struct CampaignOptions
{
    std::size_t chips = 2000;   //!< the paper's population size
    std::uint64_t seed = 2006;  //!< the paper's seed
    std::size_t threads = 0;    //!< 0 = automatic (YAC_THREADS / cores)
    std::string outDir = "out"; //!< where CSV artifacts land
    std::string traceOut;       //!< Chrome trace path; empty = off
    std::string simCache;       //!< sim memo cache file; empty = RAM only

    /**
     * The campaign's numeric engine, set by the canonical
     * --engine=key=value,... flag or the legacy --simd/--sampling/
     * --tilt/--sigma-scale aliases. The tilt/sigmaScale defaults
     * only matter when sampling is tilted; ~2 sigma along the unit
     * delay-gradient direction is the sweet spot for the paper's
     * deep Delay3/Delay4 tail yields (see docs/SAMPLING.md).
     */
    EngineSpec engine{vecmath::SimdMode::Off,
                      {SamplingMode::Naive, 2.0, 1.0},
                      CpiMode::Sim,
                      {}};
};

/**
 * Minimal declarative flag parser. Register flags, then parse();
 * values land directly in caller-owned storage.
 */
class OptionParser
{
  public:
    /** @param usage One-line usage summary shown by --help. */
    explicit OptionParser(std::string usage);

    /** Register `--name` taking an unsigned integer >= @p min. */
    template <typename UInt,
              typename = std::enable_if_t<std::is_unsigned_v<UInt>>>
    void
    add(const std::string &name, const std::string &help, UInt *out,
        std::uint64_t min = 0)
    {
        addUnsigned(name, help,
                    [out](std::uint64_t v) {
                        *out = static_cast<UInt>(v);
                    },
                    min);
    }

    /** Register `--name` taking a (possibly empty) string. */
    void add(const std::string &name, const std::string &help,
             std::string *out, bool allow_empty = false);

    /** Register `--name` taking a finite floating-point value. */
    void add(const std::string &name, const std::string &help,
             double *out);

    /**
     * Register `--name VALUE` with a custom consumer; the consumer
     * yac_fatals on invalid input.
     */
    void add(const std::string &name, const std::string &help,
             std::function<void(const std::string &value)> consume);

    /**
     * Parse all of argv. Fatal on unknown flags or bad values;
     * prints help and exits 0 on --help/-h.
     */
    void parse(int argc, char **argv) const;

    /**
     * Parse a plain argv vector (no argv[0]); used by the CLI whose
     * subcommand name is stripped before option parsing.
     */
    void parse(const std::vector<std::string> &args) const;

    /** Print the registered flags to stdout. */
    void printHelp() const;

  private:
    void addUnsigned(const std::string &name, const std::string &help,
                     std::function<void(std::uint64_t)> store,
                     std::uint64_t min);

    struct Flag
    {
        std::string name; //!< without the leading "--"
        std::string help;
        std::function<void(const std::string &value)> consume;
    };

    const Flag *find(const std::string &name) const;

    std::string usage_;
    std::vector<Flag> flags_;
};

/**
 * Register the shared campaign flags (--chips/--threads/--seed/
 * --out-dir/--trace-out plus the engine flags) writing into @p opts.
 */
void addCampaignOptions(OptionParser &parser, CampaignOptions &opts);

/**
 * Register the engine flags writing into @p engine: the canonical
 * `--engine=key=value,...` spelling (keys: simd, sampling, tilt,
 * sigma-scale, cpi, surrogate) and the alias flags --simd/
 * --sampling/--tilt/--sigma-scale/--cpi/--surrogate, which remain
 * first-class so existing scripts and the orchestrator's worker
 * command lines keep working (deprecation note:
 * docs/OBSERVABILITY.md).
 */
void addEngineOptions(OptionParser &parser, EngineSpec &engine);

/**
 * One-call convenience for bench/example main(): parse the shared
 * campaign flags and apply opts.threads to the global worker pool
 * (0 leaves the YAC_THREADS / automatic setting untouched).
 */
CampaignOptions parseCampaignOptions(int argc, char **argv);

} // namespace yac

#endif // YAC_UTIL_OPTIONS_HH
