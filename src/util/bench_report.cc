#include "util/bench_report.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace yac
{

namespace
{

/** Cursor over the line being parsed; fails by setting *error once. */
struct Cursor
{
    const std::string &line;
    std::size_t pos = 0;
    std::string *error = nullptr;
    bool failed = false;

    bool
    fail(const std::string &what)
    {
        if (!failed && error)
            *error = what + " at offset " + std::to_string(pos);
        failed = true;
        return false;
    }

    /** Consume @p token exactly. */
    bool
    expect(const std::string &token)
    {
        if (failed)
            return false;
        if (line.compare(pos, token.size(), token) != 0)
            return fail("expected '" + token + "'");
        pos += token.size();
        return true;
    }

    /** Consume [A-Za-z0-9_]+. */
    bool
    ident(std::string &out)
    {
        if (failed)
            return false;
        const std::size_t start = pos;
        while (pos < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[pos])) ||
                line[pos] == '_'))
            ++pos;
        if (pos == start)
            return fail("expected identifier");
        out = line.substr(start, pos - start);
        return true;
    }

    /** Consume a non-negative decimal integer. */
    bool
    integer(std::size_t &out)
    {
        if (failed)
            return false;
        const std::size_t start = pos;
        while (pos < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[pos])))
            ++pos;
        if (pos == start)
            return fail("expected integer");
        out = std::strtoull(line.substr(start, pos - start).c_str(),
                            nullptr, 10);
        return true;
    }

    /** Consume a non-negative fixed-point number (digits[.digits]). */
    bool
    number(double &out)
    {
        if (failed)
            return false;
        const std::size_t start = pos;
        while (pos < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[pos])))
            ++pos;
        if (pos == start)
            return fail("expected number");
        if (pos < line.size() && line[pos] == '.') {
            ++pos;
            const std::size_t frac = pos;
            while (pos < line.size() &&
                   std::isdigit(static_cast<unsigned char>(line[pos])))
                ++pos;
            if (pos == frac)
                return fail("expected digits after '.'");
        }
        out = std::strtod(line.substr(start, pos - start).c_str(), nullptr);
        return true;
    }
};

} // namespace

double
BenchReport::chipsPerSecond() const
{
    return wallSeconds > 0.0
        ? static_cast<double>(chips) / wallSeconds
        : 0.0;
}

bool
isValidBenchName(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return false;
    }
    return true;
}

std::string
formatBenchReportLine(const BenchReport &report)
{
    yac_assert(isValidBenchName(report.bench),
               "bench name must be [A-Za-z0-9_]+");
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "BENCH_%s.json {\"bench\":\"%s\",\"chips\":%zu,"
                  "\"threads\":%zu,\"wall_s\":%.3f,"
                  "\"chips_per_s\":%.1f",
                  report.bench.c_str(), report.bench.c_str(), report.chips,
                  report.threads, report.wallSeconds,
                  report.chipsPerSecond());
    std::string line = buf;
    // std::map iterates keys in ascending order, which the parser
    // requires; empty sections are omitted entirely.
    if (!report.phaseSeconds.empty()) {
        line += ",\"phases\":{";
        bool first = true;
        for (const auto &[name, seconds] : report.phaseSeconds) {
            yac_assert(isValidBenchName(name),
                       "phase name must be [A-Za-z0-9_]+");
            yac_assert(seconds >= 0.0, "phase time must be >= 0");
            std::snprintf(buf, sizeof(buf), "%s\"%s\":%.6f",
                          first ? "" : ",", name.c_str(), seconds);
            line += buf;
            first = false;
        }
        line += '}';
    }
    if (!report.counters.empty()) {
        line += ",\"counters\":{";
        bool first = true;
        for (const auto &[name, value] : report.counters) {
            yac_assert(isValidBenchName(name),
                       "counter name must be [A-Za-z0-9_]+");
            std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu",
                          first ? "" : ",", name.c_str(),
                          static_cast<unsigned long long>(value));
            line += buf;
            first = false;
        }
        line += '}';
    }
    line += '}';
    return line;
}

std::optional<BenchReport>
parseBenchReportLine(const std::string &line, std::string *error)
{
    Cursor c{line, 0, error};
    BenchReport r;
    std::string file_name, json_name;
    c.expect("BENCH_");
    c.ident(file_name);
    c.expect(".json {\"bench\":\"");
    c.ident(json_name);
    c.expect("\",\"chips\":");
    c.integer(r.chips);
    c.expect(",\"threads\":");
    c.integer(r.threads);
    c.expect(",\"wall_s\":");
    c.number(r.wallSeconds);
    c.expect(",\"chips_per_s\":");
    double chips_per_s = 0.0;
    c.number(chips_per_s);

    // Optional trailing sections, fixed order: phases then counters.
    // Keys are strictly ascending so the section is canonical -- a
    // reordered or duplicated key is a schema violation.
    const auto section = [&](const char *header, auto consume_value) {
        if (c.failed ||
            line.compare(c.pos, std::string(header).size(), header) != 0)
            return;
        c.expect(header);
        std::string prev_key;
        for (bool first = true;; first = false) {
            if (!first && !c.expect(","))
                return;
            c.expect("\"");
            std::string key;
            c.ident(key);
            c.expect("\":");
            if (c.failed)
                return;
            if (!first && key <= prev_key) {
                c.fail("section keys must be strictly ascending");
                return;
            }
            prev_key = key;
            consume_value(key);
            if (c.failed)
                return;
            if (c.pos < line.size() && line[c.pos] == '}') {
                ++c.pos;
                return;
            }
        }
    };
    section(",\"phases\":{", [&](const std::string &key) {
        double seconds = 0.0;
        if (c.number(seconds))
            r.phaseSeconds[key] = seconds;
    });
    section(",\"counters\":{", [&](const std::string &key) {
        std::size_t value = 0;
        if (c.integer(value))
            r.counters[key] = value;
    });
    c.expect("}");
    if (c.failed)
        return std::nullopt;
    if (c.pos != line.size()) {
        c.fail("trailing characters");
        return std::nullopt;
    }
    if (file_name != json_name) {
        c.fail("file name '" + file_name + "' != bench field '" +
               json_name + "'");
        return std::nullopt;
    }
    r.bench = json_name;
    // The throughput field is derived. Both printed numbers are
    // rounded (wall_s to 3 decimals, chips_per_s to 1), so accept any
    // value within the error band those roundings induce; a wall_s
    // that rounded to 0.000 makes the true ratio unrecoverable.
    if (r.wallSeconds > 0.0) {
        const double expected = r.chipsPerSecond();
        const double tol =
            0.05 + expected * (0.0005 / r.wallSeconds) + 1e-9 * expected;
        if (std::abs(chips_per_s - expected) > tol) {
            c.fail("chips_per_s inconsistent with chips/wall_s");
            return std::nullopt;
        }
    }
    return r;
}

} // namespace yac
