/**
 * @file
 * ASCII table rendering for benchmark output. Every bench binary that
 * regenerates a table from the paper formats its rows through this
 * class so the output is aligned and diffable.
 */

#ifndef YAC_UTIL_TABLE_HH
#define YAC_UTIL_TABLE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace yac
{

/**
 * Column-aligned ASCII table with a header row and optional title.
 */
class TextTable
{
  public:
    /** @param headers Column header labels. */
    explicit TextTable(std::vector<std::string> headers);

    /** Set a title printed above the table. */
    void title(std::string text) { title_ = std::move(text); }

    /**
     * Append a data row.
     * @pre cells.size() == number of headers
     */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render to a string (including trailing newline). */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format a double with @p digits fractional digits. */
    static std::string num(double value, int digits = 2);

    /** Format an integer. */
    static std::string num(long long value);

    /** Format a percentage (value 0.123 -> "12.3%"). */
    static std::string percent(double fraction, int digits = 1);

  private:
    static constexpr const char *kSeparatorTag = "\x01--";

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::string title_;
};

} // namespace yac

#endif // YAC_UTIL_TABLE_HH
