/**
 * @file
 * Running statistics and sample summaries used across yield analysis
 * and pipeline simulation.
 */

#ifndef YAC_UTIL_STATISTICS_HH
#define YAC_UTIL_STATISTICS_HH

#include <cstddef>
#include <vector>

namespace yac
{

/**
 * Single-pass accumulator for mean/variance (Welford's algorithm),
 * min and max.
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Fold another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Number of samples observed. */
    std::size_t count() const { return count_; }

    /** Sample mean (0 if empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 if fewer than two samples). */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen. */
    double min() const { return min_; }

    /** Largest sample seen. */
    double max() const { return max_; }

    /** Sum of all samples (Kahan-compensated, exact to ~1 ulp). */
    double sum() const { return sum_ + comp_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    double comp_ = 0.0; //!< Kahan compensation term for sum_
};

/**
 * Summary statistics of a fixed sample: mean, standard deviation and
 * arbitrary quantiles. The sample is copied and sorted once.
 */
class SampleSummary
{
  public:
    /** Build a summary of @p samples. @pre samples must be non-empty */
    explicit SampleSummary(std::vector<double> samples);

    std::size_t count() const { return sorted_.size(); }
    double mean() const { return mean_; }
    double stddev() const { return stddev_; }
    double min() const { return sorted_.front(); }
    double max() const { return sorted_.back(); }

    /**
     * Linear-interpolation quantile.
     * @param q Quantile in [0, 1]; 0.5 is the median.
     */
    double quantile(double q) const;

    /** Fraction of samples strictly greater than @p threshold. */
    double fractionAbove(double threshold) const;

  private:
    std::vector<double> sorted_;
    double mean_;
    double stddev_;
};

/** Pearson correlation coefficient of two equally sized samples. */
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

} // namespace yac

#endif // YAC_UTIL_STATISTICS_HH
