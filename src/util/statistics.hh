/**
 * @file
 * Running statistics and sample summaries used across yield analysis
 * and pipeline simulation.
 */

#ifndef YAC_UTIL_STATISTICS_HH
#define YAC_UTIL_STATISTICS_HH

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace yac
{

/**
 * One Neumaier-compensated summation step: folds @p x into the
 * running (@p sum, @p comp) pair. Unlike classic Kahan, the
 * compensation survives when the new term is larger than the sum,
 * which happens routinely when merging shard accumulators. The
 * compensated total is sum + comp.
 */
inline void
neumaierAdd(double &sum, double &comp, double x)
{
    const double t = sum + x;
    if (std::fabs(sum) >= std::fabs(x))
        comp += (sum - t) + x;
    else
        comp += (x - t) + sum;
    sum = t;
}

/**
 * Single-pass accumulator for mean/variance (Welford's algorithm),
 * min and max.
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Fold another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Number of samples observed. */
    std::size_t count() const { return count_; }

    /** Sample mean (0 if empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 if fewer than two samples). */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen (NaN if empty). */
    double min() const
    {
        return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                           : min_;
    }

    /** Largest sample seen (NaN if empty). */
    double max() const
    {
        return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                           : max_;
    }

    /** Sum of all samples (Kahan-compensated, exact to ~1 ulp). */
    double sum() const { return sum_ + comp_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    double comp_ = 0.0; //!< Kahan compensation term for sum_
};

/**
 * Single-pass accumulator for importance-weighted samples: weighted
 * mean/variance (West's incremental algorithm), Neumaier-compensated
 * weight sums, and the Kish effective sample size. The workhorse of
 * tilted (importance-sampled) yield campaigns, where each chip
 * carries a likelihood-ratio weight; with unit weights it reduces to
 * the plain RunningStats estimates (mean, unbiased variance,
 * ESS == count), though not bitwise -- the naive campaign path keeps
 * using RunningStats for exactly that reason.
 */
class WeightedRunningStats
{
  public:
    /** Fold one sample with weight @p w. @pre w > 0 and finite */
    void add(double x, double w);

    /** Fold another accumulator into this one. */
    void merge(const WeightedRunningStats &other);

    /** Number of samples observed (not the weight total). */
    std::size_t count() const { return count_; }

    /** Weighted mean (0 if empty). */
    double mean() const { return mean_; }

    /**
     * Unbiased weighted variance under the reliability-weights
     * convention: s / (W - W2/W), which reduces to the familiar
     * s / (n - 1) for unit weights. 0 if fewer than two samples.
     */
    double variance() const;

    /** Square root of variance(). */
    double stddev() const;

    /**
     * Delta-method standard error of the weighted mean,
     * sqrt(sum w_i^2 (x_i - mean)^2) / W. This is the plug-in
     * stderr of the self-normalized importance-sampling estimator.
     */
    double meanStdErr() const;

    /**
     * Kish effective sample size (sum w)^2 / (sum w^2): the number of
     * equally weighted samples carrying the same estimator variance.
     * Always <= count(); equality iff all weights are equal.
     */
    double ess() const;

    /** Total weight, Neumaier-compensated. */
    double weightSum() const { return w_ + wComp_; }

    /** Total squared weight, Neumaier-compensated. */
    double weightSqSum() const { return w2_ + w2Comp_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double s_ = 0.0;       //!< West's weighted sum of squared deviations
    double w_ = 0.0;       //!< sum of weights
    double wComp_ = 0.0;   //!< Neumaier compensation for w_
    double w2_ = 0.0;      //!< sum of squared weights
    double w2Comp_ = 0.0;  //!< Neumaier compensation for w2_
    double w2x_ = 0.0;     //!< sum of w^2 * x (for meanStdErr)
    double w2xComp_ = 0.0;
    double w2xx_ = 0.0;    //!< sum of w^2 * x^2 (for meanStdErr)
    double w2xxComp_ = 0.0;
};

/**
 * Summary statistics of a fixed sample: mean, standard deviation and
 * arbitrary quantiles. The sample is copied and sorted once.
 */
class SampleSummary
{
  public:
    /** Build a summary of @p samples. @pre samples must be non-empty */
    explicit SampleSummary(std::vector<double> samples);

    std::size_t count() const { return sorted_.size(); }
    double mean() const { return mean_; }
    double stddev() const { return stddev_; }
    double min() const { return sorted_.front(); }
    double max() const { return sorted_.back(); }

    /**
     * Linear-interpolation quantile.
     * @param q Quantile in [0, 1]; 0.5 is the median.
     */
    double quantile(double q) const;

    /** Fraction of samples strictly greater than @p threshold. */
    double fractionAbove(double threshold) const;

  private:
    std::vector<double> sorted_;
    double mean_;
    double stddev_;
};

/** Pearson correlation coefficient of two equally sized samples. */
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

} // namespace yac

#endif // YAC_UTIL_STATISTICS_HH
