/**
 * @file
 * Small CSV writer for exporting figure data (scatter plots, per
 * benchmark series) so they can be re-plotted outside the harness.
 */

#ifndef YAC_UTIL_CSV_HH
#define YAC_UTIL_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace yac
{

/**
 * Streaming CSV writer. Fields containing commas, quotes or newlines
 * are quoted per RFC 4180.
 */
class CsvWriter
{
  public:
    /**
     * Open @p path for writing; calls yac_fatal on failure.
     * @param headers Column names written as the first row.
     */
    CsvWriter(const std::string &path, std::vector<std::string> headers);

    /** Write a row of preformatted fields. */
    void writeRow(const std::vector<std::string> &fields);

    /** Write a row of doubles with full precision. */
    void writeRow(const std::vector<double> &values);

    /** Flush and close. Implicit in the destructor. */
    void close();

    /** Escape a single field per RFC 4180. */
    static std::string escape(const std::string &field);

  private:
    std::ofstream out_;
    std::size_t columns_;
};

} // namespace yac

#endif // YAC_UTIL_CSV_HH
