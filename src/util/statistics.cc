#include "util/statistics.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace yac
{

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    neumaierAdd(sum_, comp_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    neumaierAdd(sum_, comp_, other.sum_);
    neumaierAdd(sum_, comp_, other.comp_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
WeightedRunningStats::add(double x, double w)
{
    yac_assert(std::isfinite(w) && w > 0.0,
               "importance weight must be positive and finite");
    ++count_;
    const double w_new = weightSum() + w;
    const double delta = x - mean_;
    mean_ += delta * (w / w_new);
    s_ += w * delta * (x - mean_);
    neumaierAdd(w_, wComp_, w);
    neumaierAdd(w2_, w2Comp_, w * w);
    neumaierAdd(w2x_, w2xComp_, w * w * x);
    neumaierAdd(w2xx_, w2xxComp_, w * w * x * x);
}

void
WeightedRunningStats::merge(const WeightedRunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double w1 = weightSum();
    const double w2 = other.weightSum();
    const double total = w1 + w2;
    const double delta = other.mean_ - mean_;
    mean_ += delta * (w2 / total);
    s_ += other.s_ + delta * delta * w1 * (w2 / total);
    count_ += other.count_;
    neumaierAdd(w_, wComp_, other.w_);
    neumaierAdd(w_, wComp_, other.wComp_);
    neumaierAdd(w2_, w2Comp_, other.w2_);
    neumaierAdd(w2_, w2Comp_, other.w2Comp_);
    neumaierAdd(w2x_, w2xComp_, other.w2x_);
    neumaierAdd(w2x_, w2xComp_, other.w2xComp_);
    neumaierAdd(w2xx_, w2xxComp_, other.w2xx_);
    neumaierAdd(w2xx_, w2xxComp_, other.w2xxComp_);
}

double
WeightedRunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    const double w = weightSum();
    const double denom = w - weightSqSum() / w;
    if (denom <= 0.0)
        return 0.0;
    return s_ / denom;
}

double
WeightedRunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
WeightedRunningStats::meanStdErr() const
{
    if (count_ == 0)
        return 0.0;
    const double w = weightSum();
    // sum of w_i^2 (x_i - mean)^2, expanded so it folds into the
    // mergeable compensated power sums.
    const double ss = weightSqSum() * mean_ * mean_ -
                      2.0 * mean_ * (w2x_ + w2xComp_) +
                      (w2xx_ + w2xxComp_);
    return std::sqrt(std::max(0.0, ss)) / w;
}

double
WeightedRunningStats::ess() const
{
    if (count_ == 0)
        return 0.0;
    const double w = weightSum();
    return w * w / weightSqSum();
}

SampleSummary::SampleSummary(std::vector<double> samples)
    : sorted_(std::move(samples))
{
    yac_assert(!sorted_.empty(), "SampleSummary needs at least one sample");
    std::sort(sorted_.begin(), sorted_.end());
    RunningStats stats;
    for (double x : sorted_)
        stats.add(x);
    mean_ = stats.mean();
    stddev_ = stats.stddev();
}

double
SampleSummary::quantile(double q) const
{
    yac_assert(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
    if (sorted_.size() == 1)
        return sorted_.front();
    const double pos = q * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double
SampleSummary::fractionAbove(double threshold) const
{
    const auto it =
        std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
    const auto above = static_cast<double>(sorted_.end() - it);
    return above / static_cast<double>(sorted_.size());
}

double
pearsonCorrelation(const std::vector<double> &xs,
                   const std::vector<double> &ys)
{
    yac_assert(xs.size() == ys.size() && xs.size() >= 2,
               "correlation needs two equally sized samples");
    RunningStats sx, sy;
    for (double x : xs)
        sx.add(x);
    for (double y : ys)
        sy.add(y);
    double cov = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i)
        cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
    cov /= static_cast<double>(xs.size() - 1);
    const double denom = sx.stddev() * sy.stddev();
    if (denom == 0.0)
        return 0.0;
    return cov / denom;
}

} // namespace yac
