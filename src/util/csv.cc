#include "util/csv.hh"

#include <cstdio>

#include "util/logging.hh"

namespace yac
{

CsvWriter::CsvWriter(const std::string &path,
                     std::vector<std::string> headers)
    : out_(path), columns_(headers.size())
{
    if (!out_)
        yac_fatal("cannot open CSV file for writing: ", path);
    yac_assert(columns_ > 0, "CSV needs at least one column");
    writeRow(headers);
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    yac_assert(fields.size() == columns_,
               "CSV row has ", fields.size(), " fields, expected ",
               columns_);
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
}

void
CsvWriter::writeRow(const std::vector<double> &values)
{
    std::vector<std::string> fields;
    fields.reserve(values.size());
    char buf[64];
    for (double v : values) {
        std::snprintf(buf, sizeof(buf), "%.10g", v);
        fields.emplace_back(buf);
    }
    writeRow(fields);
}

void
CsvWriter::close()
{
    out_.close();
}

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quoting =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

} // namespace yac
