/**
 * @file
 * Umbrella public header: the stable API surface of the yield-aware
 * cache library. Examples and external consumers include this one
 * header and link yac::yac; internal code keeps including the
 * fine-grained headers it actually uses.
 *
 * Exported surface:
 *  - campaign configuration and runners (CampaignConfig, MonteCarlo,
 *    MultiCacheYield, analytic model)
 *  - yield machinery (constraints, assessment, analysis, binning,
 *    test floor)
 *  - the paper's schemes (YAPD, H-YAPD, VACA, Hybrid, adaptive
 *    hybrid, naive binning)
 *  - circuit + variation models the campaigns are built from
 *  - the pipeline/memory simulator used for CPI impact
 *  - the sharded campaign service (checkpointed workers + the
 *    fork/exec orchestrator behind yacd)
 *  - observability (trace spans and sessions, metrics registry)
 *  - shared utilities (options parsing, parallel loops, RNG, stats)
 */

#ifndef YAC_YAC_HH
#define YAC_YAC_HH

// Observability.
#include "trace/metrics.hh"
#include "trace/trace.hh"

// Shared utilities.
#include "util/bench_report.hh"
#include "util/csv.hh"
#include "util/histogram.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/statistics.hh"
#include "util/table.hh"

// Process variation and circuit models.
#include "circuit/cache_model.hh"
#include "circuit/geometry.hh"
#include "circuit/technology.hh"
#include "variation/correlation.hh"
#include "variation/process_params.hh"
#include "variation/sampler.hh"

// Yield campaigns.
#include "yield/analysis.hh"
#include "yield/analytic.hh"
#include "yield/assessment.hh"
#include "yield/binning.hh"
#include "yield/campaign.hh"
#include "yield/constraints.hh"
#include "yield/cpi_pricing.hh"
#include "yield/monte_carlo.hh"
#include "yield/multi_cache.hh"
#include "yield/scheme.hh"
#include "yield/testing.hh"

// The paper's schemes.
#include "yield/schemes/adaptive_hybrid.hh"
#include "yield/schemes/hyapd.hh"
#include "yield/schemes/hybrid.hh"
#include "yield/schemes/naive_binning.hh"
#include "yield/schemes/vaca.hh"
#include "yield/schemes/yapd.hh"

// Design-space optimizer.
#include "opt/design_point.hh"
#include "opt/optimizer.hh"
#include "opt/probe.hh"
#include "opt/probe_cache.hh"

// Sharded campaign service.
#include "service/checkpoint.hh"
#include "service/orchestrator.hh"
#include "service/shard_campaign.hh"
#include "service/worker.hh"

// Performance simulation.
#include "cache/memory_hierarchy.hh"
#include "cache/set_assoc_cache.hh"
#include "sim/core_params.hh"
#include "sim/ooo_core.hh"
#include "sim/scenarios.hh"
#include "sim/sim_stats.hh"
#include "sim/simulation.hh"
#include "sim/surrogate.hh"
#include "workload/profile.hh"
#include "workload/trace_generator.hh"
#include "workload/trace_io.hh"

#endif // YAC_YAC_HH
